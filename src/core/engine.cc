#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>

#include "common/check.h"
#include "core/checkpoint.h"
#include "graph/sampling.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/io.h"
#include "tensor/workspace.h"

namespace cgnp {

namespace {

int64_t AttributeDimOf(const Graph& g) {
  if (!g.has_attributes()) return 0;
  int32_t mx = -1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (int32_t a : g.Attributes(v)) mx = std::max(mx, a);
  }
  return mx + 1;
}

constexpr uint32_t kEngineMagic = 0x4347454Eu;  // "CGEN"
constexpr uint32_t kEngineVersion = 1;

}  // namespace

StatusOr<LocalQueryTask> BuildQueryTask(
    const Graph& g, NodeId query, const std::vector<QueryExample>& labelled,
    const TaskConfig& tasks, int64_t attribute_dim, uint64_t seed) {
  // Queries and support observations arrive from external callers (serving
  // requests), so they are range-checked rather than trusted -- with the
  // same validator every registry backend uses.
  CGNP_RETURN_IF_ERROR(ValidateQueryInput(g, query, labelled));
  if (tasks.subgraph_size <= 0) {
    return InvalidArgumentError("task subgraph_size must be positive, got " +
                                std::to_string(tasks.subgraph_size));
  }
  CGNP_TRACE_SPAN("task_build");

  LocalQueryTask out;
  Rng rng(seed ^ static_cast<uint64_t>(query + 1));
  out.nodes = BfsSample(g, query, tasks.subgraph_size, &rng);
  // The query (BFS seed) is nodes[0]; map ids.
  std::vector<NodeId> new_of_old;
  Graph sub = InducedSubgraph(g, out.nodes, &new_of_old);
  out.graph = AttachTaskFeatures(sub, attribute_dim);
  out.query = new_of_old[query];

  // Remap user-provided support observations into the task subgraph.
  for (const auto& ex : labelled) {
    if (new_of_old[ex.query] < 0) continue;
    QueryExample local;
    local.query = new_of_old[ex.query];
    for (NodeId v : ex.pos) {
      if (new_of_old[v] >= 0) local.pos.push_back(new_of_old[v]);
    }
    for (NodeId v : ex.neg) {
      if (new_of_old[v] >= 0) local.neg.push_back(new_of_old[v]);
    }
    out.support.push_back(std::move(local));
  }
  if (out.support.empty()) {
    // Zero-shot: condition on the query alone.
    QueryExample self;
    self.query = out.query;
    out.support.push_back(std::move(self));
  }
  return out;
}

std::vector<NodeId> MembersFromContext(const CgnpModel& model,
                                       const LocalQueryTask& task,
                                       const Tensor& context, float threshold,
                                       std::vector<float>* member_probs) {
  CGNP_TRACE_SPAN("decode");
  Tensor logits = model.QueryLogits(task.graph, context, task.query, nullptr);
  const std::vector<float> probs = SigmoidValues(logits);
  std::vector<NodeId> members;
  for (size_t i = 0; i < probs.size(); ++i) {
    if (probs[i] >= threshold ||
        static_cast<NodeId>(i) == task.query) {
      members.push_back(task.nodes[i]);
      if (member_probs != nullptr) member_probs->push_back(probs[i]);
    }
  }
  return members;
}

CommunitySearchEngine::CommunitySearchEngine(Options options)
    : options_(std::move(options)) {}

Status CommunitySearchEngine::Fit(const Graph& g) {
  if (g.num_nodes() == 0) {
    return InvalidArgumentError("cannot fit on an empty graph");
  }
  if (!g.has_communities()) {
    return InvalidArgumentError(
        "Fit needs ground-truth communities on the graph");
  }
  Rng rng(options_.seed);
  attribute_dim_ = AttributeDimOf(g);
  std::vector<CsTask> train;
  for (int64_t i = 0; i < options_.num_train_tasks; ++i) {
    CsTask t;
    if (SampleTask(g, options_.tasks, {}, attribute_dim_, &rng, &t)) {
      train.push_back(std::move(t));
    }
  }
  if (train.empty()) {
    return InvalidArgumentError(
        "could not sample any training task: the task configuration "
        "(subgraph_size / pos_samples / neg_samples) is infeasible for "
        "this graph's communities");
  }
  std::vector<CsTask> valid;
  for (int64_t i = 0; i < options_.num_valid_tasks; ++i) {
    CsTask t;
    if (SampleTask(g, options_.tasks, {}, attribute_dim_, &rng, &t)) {
      valid.push_back(std::move(t));
    }
  }
  feature_dim_ = train.front().graph.feature_dim();
  Rng model_rng(options_.model.seed);
  model_ = std::make_unique<CgnpModel>(options_.model, feature_dim_, &model_rng);
  const auto fit_start = std::chrono::steady_clock::now();
  if (!valid.empty()) {
    CgnpMetaTrainWithValidation(model_.get(), train, valid,
                                options_.model.epochs, options_.model.lr,
                                options_.model.seed,
                                options_.early_stop_patience);
  } else {
    // Per-epoch observability: epoch counter + last-loss gauge in the
    // default registry, and a rate-limited structured progress line.
    auto& reg = obs::MetricsRegistry::Default();
    obs::Counter& epochs_total = reg.GetCounter("cgnp_fit_epochs_total");
    obs::Gauge& mean_loss = reg.GetGauge("cgnp_fit_mean_loss");
    auto epoch_start = std::chrono::steady_clock::now();
    CgnpMetaTrain(model_.get(), train, options_.model.epochs,
                  options_.model.lr, options_.model.seed,
                  [&](const CgnpEpochStats& s) {
                    const auto now = std::chrono::steady_clock::now();
                    const double epoch_ms =
                        std::chrono::duration<double, std::milli>(
                            now - epoch_start)
                            .count();
                    epoch_start = now;
                    epochs_total.Increment();
                    mean_loss.Set(s.mean_loss);
                    CGNP_LOG_EVERY(kDebug, "fit_epoch", /*per_second=*/20.0)
                        .Num("epoch", static_cast<double>(s.epoch))
                        .Num("mean_loss", s.mean_loss)
                        .Num("epoch_ms", epoch_ms);
                  });
  }
  const double fit_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - fit_start)
                            .count();
  CGNP_LOG(kInfo, "fit_done")
      .Num("train_tasks", static_cast<double>(train.size()))
      .Num("valid_tasks", static_cast<double>(valid.size()))
      .Num("epochs", static_cast<double>(options_.model.epochs))
      .Num("elapsed_ms", fit_ms);
  return Status::Ok();
}

StatusOr<QueryResult> CommunitySearchEngine::Query(
    const Graph& g, NodeId query, const std::vector<QueryExample>& labelled,
    const QueryOptions& options) const {
  if (!trained()) {
    return FailedPreconditionError(
        "engine is not trained: call Fit or restore a trained checkpoint "
        "before querying");
  }
  // NaN fails both comparisons, so the negated form rejects it too.
  if (!(options.threshold >= 0.0f && options.threshold <= 1.0f)) {
    return InvalidArgumentError("threshold must be in [0, 1], got " +
                                std::to_string(options.threshold));
  }
  const auto start = std::chrono::steady_clock::now();
  CGNP_ASSIGN_OR_RETURN(
      LocalQueryTask task,
      BuildQueryTask(g, query, labelled, options_.tasks, attribute_dim_,
                     options_.seed));
  if (task.graph.feature_dim() != feature_dim_) {
    return InvalidArgumentError(
        "query graph features incompatible with the fitted model: task "
        "feature_dim " + std::to_string(task.graph.feature_dim()) +
        " vs model " + std::to_string(feature_dim_));
  }

  // Inference only: never record tape (see the thread-safety contract on
  // CgnpModel's const methods in core/cgnp.h).
  NoGradGuard no_grad;
  // Decode intermediates live in this thread's arena; `context` (declared
  // after the scope) is destroyed before the arena resets. No-op when a
  // serving layer already opened a scope for this request.
  WorkspaceScope workspace;
  Tensor context;
  {
    CGNP_TRACE_SPAN("encode");
    context = model_->TaskContext(task.graph, task.support, nullptr);
  }
  QueryResult result;
  result.backend = "cgnp";
  result.members = MembersFromContext(*model_, task, context,
                                      options.threshold, &result.probs);
  const auto end = std::chrono::steady_clock::now();
  result.elapsed_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  // Same family the classical adapters record into (cs/searcher.cc), so
  // backends compare on one dashboard.
  static obs::Histogram* search_ms =
      &obs::MetricsRegistry::Default().GetHistogram(
          "cgnp_backend_search_ms", {{"backend", "cgnp"}});
  search_ms->Record(result.elapsed_ms);
  return result;
}

StatusOr<std::vector<NodeId>> CommunitySearchEngine::Search(
    const Graph& g, NodeId query, const std::vector<QueryExample>& labelled,
    float threshold) const {
  QueryOptions options;
  options.threshold = threshold;
  CGNP_ASSIGN_OR_RETURN(QueryResult result,
                        Query(g, query, labelled, options));
  return std::move(result.members);
}

Status CommunitySearchEngine::SaveCheckpoint(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    return NotFoundError("cannot write engine checkpoint: " + path);
  }
  io::WriteU32(out, kEngineMagic);
  io::WriteU32(out, kEngineVersion);
  WriteCgnpConfig(out, options_.model);
  WriteTaskConfig(out, options_.tasks);
  io::WriteI64(out, options_.num_train_tasks);
  io::WriteI64(out, options_.num_valid_tasks);
  io::WriteI64(out, options_.early_stop_patience);
  io::WriteU64(out, options_.seed);
  io::WriteI64(out, feature_dim_);
  io::WriteI64(out, attribute_dim_);
  io::WriteU32(out, trained() ? 1 : 0);
  if (trained()) CgnpModelWrite(out, *model_);
  out.flush();
  if (!out.good()) {
    return DataLossError("short write to engine checkpoint: " + path);
  }
  return Status::Ok();
}

StatusOr<CommunitySearchEngine> CommunitySearchEngine::LoadCheckpoint(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return NotFoundError("cannot read engine checkpoint: " + path);
  }
  const uint32_t magic = io::ReadU32(in);
  const uint32_t version = io::ReadU32(in);
  if (!in.good() || magic != kEngineMagic) {
    return DataLossError("not an engine checkpoint: " + path);
  }
  if (version != kEngineVersion) {
    return DataLossError("unsupported engine checkpoint version " +
                         std::to_string(version) + ": " + path);
  }
  Options options;
  CGNP_ASSIGN_OR_RETURN(options.model, ReadCgnpConfig(in));
  CGNP_ASSIGN_OR_RETURN(options.tasks, ReadTaskConfig(in));
  options.num_train_tasks = io::ReadI64(in);
  options.num_valid_tasks = io::ReadI64(in);
  options.early_stop_patience = io::ReadI64(in);
  options.seed = io::ReadU64(in);
  CommunitySearchEngine engine(std::move(options));
  engine.feature_dim_ = io::ReadI64(in);
  engine.attribute_dim_ = io::ReadI64(in);
  const uint32_t has_model = io::ReadU32(in);
  if (!in.good()) {
    return DataLossError("truncated engine checkpoint: " + path);
  }
  if (has_model != 0) {
    CGNP_ASSIGN_OR_RETURN(engine.model_, CgnpModelRead(in));
    if (engine.model_->feature_dim() != engine.feature_dim_) {
      return DataLossError("engine checkpoint model/feature_dim mismatch: " +
                           path);
    }
  }
  if (!in.good()) {
    return DataLossError("truncated engine checkpoint: " + path);
  }
  return engine;
}

// --- EngineBuilder ----------------------------------------------------------

Status ValidateEngineOptions(const CommunitySearchEngine::Options& o) {
  const CgnpConfig& m = o.model;
  if (m.hidden_dim <= 0) {
    return InvalidArgumentError("model.hidden_dim must be positive, got " +
                                std::to_string(m.hidden_dim));
  }
  if (m.num_layers <= 0) {
    return InvalidArgumentError("model.num_layers must be positive, got " +
                                std::to_string(m.num_layers));
  }
  if (m.decoder_layers <= 0) {
    return InvalidArgumentError("model.decoder_layers must be positive, got " +
                                std::to_string(m.decoder_layers));
  }
  if (!(m.dropout >= 0.0f && m.dropout < 1.0f)) {
    return InvalidArgumentError("model.dropout must be in [0, 1), got " +
                                std::to_string(m.dropout));
  }
  if (!(m.lr > 0.0f) || !std::isfinite(m.lr)) {
    return InvalidArgumentError("model.lr must be positive and finite, got " +
                                std::to_string(m.lr));
  }
  if (m.epochs <= 0) {
    return InvalidArgumentError("model.epochs must be positive, got " +
                                std::to_string(m.epochs));
  }
  const TaskConfig& t = o.tasks;
  if (t.subgraph_size <= 0) {
    return InvalidArgumentError("tasks.subgraph_size must be positive, got " +
                                std::to_string(t.subgraph_size));
  }
  if (t.shots <= 0) {
    return InvalidArgumentError("tasks.shots must be positive, got " +
                                std::to_string(t.shots));
  }
  if (t.query_set_size <= 0) {
    return InvalidArgumentError("tasks.query_set_size must be positive, got " +
                                std::to_string(t.query_set_size));
  }
  if (t.pos_samples <= 0) {
    return InvalidArgumentError("tasks.pos_samples must be positive, got " +
                                std::to_string(t.pos_samples));
  }
  if (t.neg_samples < 0) {
    return InvalidArgumentError("tasks.neg_samples must be >= 0, got " +
                                std::to_string(t.neg_samples));
  }
  if (o.num_train_tasks <= 0) {
    return InvalidArgumentError("num_train_tasks must be positive, got " +
                                std::to_string(o.num_train_tasks));
  }
  if (o.num_valid_tasks < 0) {
    return InvalidArgumentError("num_valid_tasks must be >= 0, got " +
                                std::to_string(o.num_valid_tasks));
  }
  if (o.num_valid_tasks > 0 && o.early_stop_patience <= 0) {
    return InvalidArgumentError("early_stop_patience must be positive, got " +
                                std::to_string(o.early_stop_patience));
  }
  return Status::Ok();
}

EngineBuilder& EngineBuilder::WithModel(const CgnpConfig& cfg) {
  options_.model = cfg;
  any_setter_called_ = true;
  return *this;
}

EngineBuilder& EngineBuilder::WithTasks(const TaskConfig& cfg) {
  options_.tasks = cfg;
  any_setter_called_ = true;
  return *this;
}

EngineBuilder& EngineBuilder::WithTrainTasks(int64_t num_train_tasks) {
  options_.num_train_tasks = num_train_tasks;
  any_setter_called_ = true;
  return *this;
}

EngineBuilder& EngineBuilder::WithValidation(int64_t num_valid_tasks,
                                             int64_t early_stop_patience) {
  options_.num_valid_tasks = num_valid_tasks;
  options_.early_stop_patience = early_stop_patience;
  any_setter_called_ = true;
  return *this;
}

EngineBuilder& EngineBuilder::WithSeed(uint64_t seed) {
  options_.seed = seed;
  any_setter_called_ = true;
  return *this;
}

EngineBuilder& EngineBuilder::FromCheckpoint(std::string path) {
  checkpoint_path_ = std::move(path);
  return *this;
}

StatusOr<CommunitySearchEngine> EngineBuilder::Build() const {
  if (!checkpoint_path_.empty()) {
    if (any_setter_called_) {
      return InvalidArgumentError(
          "FromCheckpoint restores the full stored configuration; do not "
          "combine it with WithModel/WithTasks/WithTrainTasks/"
          "WithValidation/WithSeed");
    }
    return CommunitySearchEngine::LoadCheckpoint(checkpoint_path_);
  }
  CGNP_RETURN_IF_ERROR(ValidateEngineOptions(options_));
  return CommunitySearchEngine(options_);
}

}  // namespace cgnp
