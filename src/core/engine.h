// High-level facade: train a CGNP meta model on a labelled data graph and
// answer community-search queries on it. This is the quickstart-level API
// the examples use; benchmark code drives the lower-level pieces directly.
#ifndef CGNP_CORE_ENGINE_H_
#define CGNP_CORE_ENGINE_H_

#include <memory>
#include <vector>

#include "core/cgnp.h"
#include "data/tasks.h"

namespace cgnp {

class CommunitySearchEngine {
 public:
  struct Options {
    CgnpConfig model;
    TaskConfig tasks;
    int64_t num_train_tasks = 40;
    // When > 0, this many extra tasks are sampled for validation and
    // meta-training uses early stopping with best-snapshot selection
    // (CgnpMetaTrainWithValidation).
    int64_t num_valid_tasks = 0;
    int64_t early_stop_patience = 10;
    uint64_t seed = 7;
  };

  explicit CommunitySearchEngine(Options options);

  // Samples training tasks from the labelled graph and meta-trains the
  // model. `g` must carry ground-truth communities.
  void Fit(const Graph& g);

  // Answers a community-search query on (a BFS neighborhood of) `g`.
  // `labelled` optionally supplies user-provided support observations in
  // g's node ids; when empty, a single self-observation (the query node
  // with no further positives) conditions the context -- the zero-shot
  // setting. Returns the predicted member nodes in g's ids.
  std::vector<NodeId> Search(const Graph& g, NodeId query,
                             const std::vector<QueryExample>& labelled = {},
                             float threshold = 0.5f);

  bool trained() const { return model_ != nullptr; }
  const CgnpModel* model() const { return model_.get(); }

 private:
  Options options_;
  std::unique_ptr<CgnpModel> model_;
  int64_t feature_dim_ = 0;
  int64_t attribute_dim_ = 0;
};

}  // namespace cgnp

#endif  // CGNP_CORE_ENGINE_H_
