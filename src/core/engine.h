// High-level facade: train a CGNP meta model on a labelled data graph and
// answer community-search queries on it. This is the quickstart-level API
// the examples use; benchmark code drives the lower-level pieces directly.
//
// API v1 (see docs/API.md):
//   * construction goes through the fluent EngineBuilder, which validates
//     the configuration and returns StatusOr<CommunitySearchEngine>;
//   * every method reachable with user input (Fit, Search, Query,
//     checkpoint save/load) returns Status/StatusOr instead of aborting --
//     CGNP_CHECK remains only for internal invariants;
//   * the engine is also reachable through the backend registry as "cgnp"
//     (cs/searcher.h, core/cgnp_searcher.h), side by side with the
//     classical algorithms.
#ifndef CGNP_CORE_ENGINE_H_
#define CGNP_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cgnp.h"
#include "cs/searcher.h"
#include "data/tasks.h"

namespace cgnp {

// A community-search query materialised as a self-contained local task:
// the BFS subgraph around the query with the Section VII-A feature matrix
// attached, support observations remapped into local ids, and the map back
// to the parent graph's ids. Both CommunitySearchEngine::Search and the
// serving subsystem (src/serve) build queries through this, so the two
// paths are prediction-identical by construction.
struct LocalQueryTask {
  Graph graph;                  // feature-attached task subgraph
  std::vector<NodeId> nodes;    // local id -> parent graph id
  NodeId query = -1;            // local id of the query node
  // Support in local ids; never empty (falls back to the zero-shot
  // self-observation when no labelled example survives the remap).
  std::vector<QueryExample> support;
};

// Deterministic given (g, query, seed): the BFS sample draws from an rng
// seeded with `seed ^ (query + 1)`, so repeated calls -- from any thread --
// materialise the same task. Labelled examples whose nodes fall outside
// the sampled subgraph are dropped (entirely, when the query itself does).
// Node ids outside [0, g.num_nodes()) -- in the query or in the support
// observations -- and empty graphs return a non-OK Status (these arrive
// straight from serving requests and must never abort the process).
StatusOr<LocalQueryTask> BuildQueryTask(
    const Graph& g, NodeId query, const std::vector<QueryExample>& labelled,
    const TaskConfig& tasks, int64_t attribute_dim, uint64_t seed);

// The decode half shared by Search and the server: one decoder pass over
// the task given its context, sigmoid, then the membership rule (prob >=
// threshold, query always included). Returns members in the parent
// graph's ids; when `member_probs` is non-null it receives the matching
// per-member probability.
std::vector<NodeId> MembersFromContext(const CgnpModel& model,
                                       const LocalQueryTask& task,
                                       const Tensor& context, float threshold,
                                       std::vector<float>* member_probs =
                                           nullptr);

class CommunitySearchEngine {
 public:
  struct Options {
    CgnpConfig model;
    TaskConfig tasks;
    int64_t num_train_tasks = 40;
    // When > 0, this many extra tasks are sampled for validation and
    // meta-training uses early stopping with best-snapshot selection
    // (CgnpMetaTrainWithValidation).
    int64_t num_valid_tasks = 0;
    int64_t early_stop_patience = 10;
    uint64_t seed = 7;
  };

  // Direct construction does not validate `options`; prefer EngineBuilder,
  // which does (and is the documented v1 entry point).
  explicit CommunitySearchEngine(Options options);

  // Samples training tasks from the labelled graph and meta-trains the
  // model. Errors when `g` carries no ground-truth communities or when the
  // task configuration cannot sample a single task from it.
  Status Fit(const Graph& g);

  // Answers a community-search query on (a BFS neighborhood of) `g`.
  // `labelled` optionally supplies user-provided support observations in
  // g's node ids; when empty, a single self-observation (the query node
  // with no further positives) conditions the context -- the zero-shot
  // setting. Returns members plus aligned membership probabilities and
  // timing; FailedPrecondition before Fit/load, OutOfRange for bad node
  // ids, InvalidArgument for a bad threshold.
  StatusOr<QueryResult> Query(const Graph& g, NodeId query,
                              const std::vector<QueryExample>& labelled = {},
                              const QueryOptions& options = {}) const;

  // Member-list shorthand for Query (same validation and error space).
  StatusOr<std::vector<NodeId>> Search(
      const Graph& g, NodeId query,
      const std::vector<QueryExample>& labelled = {},
      float threshold = 0.5f) const;

  // Persists the engine (options + attribute/feature dims + the trained
  // model, when present) so a model trains once and serves forever.
  // Versioned binary format built on core/checkpoint.h.
  Status SaveCheckpoint(const std::string& path) const;
  // Restores an engine saved with SaveCheckpoint in a fresh process; a
  // restored trained engine answers Search without re-Fitting. NotFound
  // for a missing file, DataLoss for a foreign, corrupt,
  // version-mismatched or truncated one. Also reachable as
  // EngineBuilder().FromCheckpoint(path).Build().
  static StatusOr<CommunitySearchEngine> LoadCheckpoint(
      const std::string& path);

  bool trained() const { return model_ != nullptr; }
  const CgnpModel* model() const { return model_.get(); }
  const Options& options() const { return options_; }
  int64_t attribute_dim() const { return attribute_dim_; }
  int64_t feature_dim() const { return feature_dim_; }

 private:
  Options options_;
  std::unique_ptr<CgnpModel> model_;
  int64_t feature_dim_ = 0;
  int64_t attribute_dim_ = 0;
};

// Configuration validation shared by EngineBuilder::Build and tests;
// InvalidArgument naming the offending field when `options` cannot
// produce a trainable engine.
Status ValidateEngineOptions(const CommunitySearchEngine::Options& options);

// Fluent, validating construction -- the v1 replacement for filling in a
// bare Options struct:
//
//   CGNP_ASSIGN_OR_RETURN(
//       CommunitySearchEngine engine,
//       EngineBuilder().WithModel(model_cfg).WithTasks(task_cfg)
//                      .WithSeed(7).Build());
//
// or, restoring a previously trained engine through the same entry point:
//
//   auto restored = EngineBuilder().FromCheckpoint("model.ckpt").Build();
//
// Build() validates the assembled configuration (ValidateEngineOptions)
// and returns InvalidArgument instead of constructing an engine that
// would misbehave later. FromCheckpoint is exclusive with the other
// setters: the checkpoint stores the full configuration.
class EngineBuilder {
 public:
  EngineBuilder() = default;

  EngineBuilder& WithModel(const CgnpConfig& cfg);
  EngineBuilder& WithTasks(const TaskConfig& cfg);
  EngineBuilder& WithTrainTasks(int64_t num_train_tasks);
  // Enables validation-based early stopping during Fit.
  EngineBuilder& WithValidation(int64_t num_valid_tasks,
                                int64_t early_stop_patience = 10);
  EngineBuilder& WithSeed(uint64_t seed);
  EngineBuilder& FromCheckpoint(std::string path);

  StatusOr<CommunitySearchEngine> Build() const;

 private:
  CommunitySearchEngine::Options options_;
  std::string checkpoint_path_;
  bool any_setter_called_ = false;
};

}  // namespace cgnp

#endif  // CGNP_CORE_ENGINE_H_
