#include "core/cgnp.h"

#include "common/check.h"
#include "meta/query_gnn.h"
#include "tensor/ops.h"
#include "tensor/optim.h"

namespace cgnp {

const char* CommutativeOpName(CommutativeOp op) {
  switch (op) {
    case CommutativeOp::kSum:
      return "sum";
    case CommutativeOp::kAverage:
      return "average";
    case CommutativeOp::kAttention:
      return "attention";
    case CommutativeOp::kCrossAttention:
      return "cross-attention";
  }
  return "?";
}

const char* DecoderKindName(DecoderKind kind) {
  switch (kind) {
    case DecoderKind::kInnerProduct:
      return "IP";
    case DecoderKind::kMlp:
      return "MLP";
    case DecoderKind::kGnn:
      return "GNN";
  }
  return "?";
}

std::string CgnpConfig::VariantName() const {
  return std::string("CGNP-") + DecoderKindName(decoder);
}

CgnpModel::CgnpModel(const CgnpConfig& cfg, int64_t feature_dim, Rng* rng)
    : cfg_(cfg),
      feature_dim_(feature_dim),
      encoder_(cfg, feature_dim, rng),
      commutative_(cfg.commutative, cfg.hidden_dim, rng),
      decoder_(cfg, rng) {
  RegisterChild(&encoder_);
  RegisterChild(&commutative_);
  RegisterChild(&decoder_);
}

Tensor CgnpModel::TaskContext(const Graph& g,
                              const std::vector<QueryExample>& support,
                              Rng* rng) const {
  CGNP_CHECK(!support.empty()) << " CGNP needs at least one support shot";
  std::vector<Tensor> views;
  views.reserve(support.size());
  for (const auto& ex : support) {
    views.push_back(encoder_.Forward(g, ex, rng));
  }
  return commutative_.Combine(views);
}

Tensor CgnpModel::QueryLogits(const Graph& g, const Tensor& context, NodeId q,
                              Rng* rng) const {
  return decoder_.Forward(g, context, q, rng);
}

void CgnpMetaTrain(CgnpModel* model, const std::vector<CsTask>& tasks,
                   int64_t epochs, float lr, uint64_t seed,
                   const std::function<void(const CgnpEpochStats&)>& on_epoch) {
  CGNP_CHECK(!tasks.empty());
  Rng rng(seed);
  Adam opt(model->Parameters(), lr);
  model->SetTraining(true);

  std::vector<int64_t> order(tasks.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);

  std::vector<float> targets, mask;
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(&order);  // Algorithm 1 line 2
    float epoch_loss = 0.0f;
    int64_t used_tasks = 0;
    for (int64_t idx : order) {
      const CsTask& task = tasks[idx];
      if (task.support.empty() || task.query.empty()) continue;
      opt.ZeroGrad();
      // Lines 5-7: context from the support set.
      Tensor context = model->TaskContext(task.graph, task.support, &rng);
      // Lines 8-11: accumulated query-set loss (Eq. 19).
      Tensor loss_sum;
      for (const auto& ex : task.query) {
        Tensor logits = model->QueryLogits(task.graph, context, ex.query, &rng);
        ExampleTargets(ex, task.graph.num_nodes(), &targets, &mask);
        Tensor loss = BceWithLogits(logits, targets, mask);
        loss_sum = loss_sum.Defined() ? Add(loss_sum, loss) : loss;
      }
      loss_sum =
          MulScalar(loss_sum, 1.0f / static_cast<float>(task.query.size()));
      epoch_loss += loss_sum.Item();
      ++used_tasks;
      // Line 12: one gradient step per task.
      loss_sum.Backward();
      opt.Step();
    }
    if (on_epoch && used_tasks > 0) {
      on_epoch({epoch, epoch_loss / static_cast<float>(used_tasks)});
    }
  }
  model->SetTraining(false);
}

std::vector<std::vector<float>> CgnpMetaTest(const CgnpModel& model,
                                             const CsTask& task) {
  NoGradGuard no_grad;
  // Algorithm 2: the whole support set is the conditioning context.
  Tensor context = model.TaskContext(task.graph, task.support, nullptr);
  std::vector<std::vector<float>> out;
  out.reserve(task.query.size());
  for (const auto& ex : task.query) {
    out.push_back(SigmoidValues(
        model.QueryLogits(task.graph, context, ex.query, nullptr)));
  }
  return out;
}

double CgnpValidationF1(const CgnpModel& model,
                        const std::vector<CsTask>& tasks) {
  StatsAccumulator acc;
  for (const auto& task : tasks) {
    if (task.support.empty() || task.query.empty()) continue;
    const auto preds = CgnpMetaTest(model, task);
    for (size_t i = 0; i < task.query.size(); ++i) {
      acc.Add(EvaluateScores(preds[i], task.query[i].truth,
                             task.query[i].query));
    }
  }
  return acc.MeanStats().f1;
}

double CgnpMetaTrainWithValidation(CgnpModel* model,
                                   const std::vector<CsTask>& train_tasks,
                                   const std::vector<CsTask>& valid_tasks,
                                   int64_t epochs, float lr, uint64_t seed,
                                   int64_t patience) {
  CGNP_CHECK(!valid_tasks.empty());
  double best_f1 = -1.0;
  std::vector<float> best_params = model->FlatParameters();
  int64_t stale = 0;
  // Reuse the plain trainer one epoch at a time so the optimiser state is
  // deliberately reset per epoch only for the shuffling rng; Adam moments
  // persist inside each call. To keep Adam state across epochs we run the
  // full loop here instead of calling CgnpMetaTrain repeatedly.
  Rng rng(seed);
  Adam opt(model->Parameters(), lr);
  std::vector<int64_t> order(train_tasks.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  std::vector<float> targets, mask;
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    model->SetTraining(true);
    rng.Shuffle(&order);
    for (int64_t idx : order) {
      const CsTask& task = train_tasks[idx];
      if (task.support.empty() || task.query.empty()) continue;
      opt.ZeroGrad();
      Tensor context = model->TaskContext(task.graph, task.support, &rng);
      Tensor loss_sum;
      for (const auto& ex : task.query) {
        Tensor logits = model->QueryLogits(task.graph, context, ex.query, &rng);
        ExampleTargets(ex, task.graph.num_nodes(), &targets, &mask);
        Tensor loss = BceWithLogits(logits, targets, mask);
        loss_sum = loss_sum.Defined() ? Add(loss_sum, loss) : loss;
      }
      loss_sum =
          MulScalar(loss_sum, 1.0f / static_cast<float>(task.query.size()));
      loss_sum.Backward();
      opt.Step();
    }
    model->SetTraining(false);
    const double f1 = CgnpValidationF1(*model, valid_tasks);
    if (f1 > best_f1) {
      best_f1 = f1;
      best_params = model->FlatParameters();
      stale = 0;
    } else if (++stale >= patience) {
      break;
    }
  }
  model->SetFlatParameters(best_params);
  model->SetTraining(false);
  return best_f1;
}

void CgnpMethod::MetaTrain(const std::vector<CsTask>& train_tasks) {
  CGNP_CHECK(!train_tasks.empty());
  Rng rng(cfg_.seed);
  model_ = std::make_unique<CgnpModel>(
      cfg_, train_tasks.front().graph.feature_dim(), &rng);
  CgnpMetaTrain(model_.get(), train_tasks, cfg_.epochs, cfg_.lr, cfg_.seed);
}

std::vector<std::vector<float>> CgnpMethod::PredictTask(const CsTask& task) {
  CGNP_CHECK(model_ != nullptr) << " CGNP requires MetaTrain first";
  return CgnpMetaTest(*model_, task);
}

}  // namespace cgnp
