// Configuration of the CGNP model family (Section VI): encoder GNN type,
// commutative aggregation, decoder complexity, and training hyper-params.
#ifndef CGNP_CORE_CGNP_CONFIG_H_
#define CGNP_CORE_CGNP_CONFIG_H_

#include <cstdint>
#include <string>

#include "nn/gnn_stack.h"

namespace cgnp {

// The commutative operation "big-plus" combining query-specific views into
// the task context (Eq. 14-16). kCrossAttention is the ANP-style extension
// (Kim et al. 2019, the paper's [54]): each node computes its own attention
// weights over the views instead of sharing one weight per view -- the
// natural next step the paper's Section VI discussion points at.
enum class CommutativeOp { kSum, kAverage, kAttention, kCrossAttention };

const char* CommutativeOpName(CommutativeOp op);

// Decoder rho (Section VI): parameter-free inner product, MLP + inner
// product, or GNN + inner product.
enum class DecoderKind { kInnerProduct, kMlp, kGnn };

const char* DecoderKindName(DecoderKind kind);

struct CgnpConfig {
  GnnKind encoder = GnnKind::kGat;          // Table IV: GAT is the default
  CommutativeOp commutative = CommutativeOp::kAverage;
  DecoderKind decoder = DecoderKind::kInnerProduct;

  int64_t hidden_dim = 64;   // paper: 128 on GPU; scaled for CPU
  int64_t num_layers = 3;    // encoder depth (paper: 3)
  int64_t decoder_layers = 2;  // MLP / GNN decoder depth (paper: 2)
  float dropout = 0.2f;

  float lr = 5e-4f;          // Adam (paper: 5e-4)
  int64_t epochs = 30;       // meta-training epochs (paper: 200 on GPU)
  uint64_t seed = 1;

  // "CGNP-IP" / "CGNP-MLP" / "CGNP-GNN", as in the paper's tables.
  std::string VariantName() const;
};

}  // namespace cgnp

#endif  // CGNP_CORE_CGNP_CONFIG_H_
