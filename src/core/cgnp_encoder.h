// CGNP encoder phi (Section VI, "GNN Encoder"): a K-layer GNN that maps one
// observation (q, l_q) together with the task graph to a query-specific
// view H_q in R^{n x d}. The input of node v is [Il(v) || A(v)] (Eq. 13)
// where Il marks the query node and its known positive samples.
#ifndef CGNP_CORE_CGNP_ENCODER_H_
#define CGNP_CORE_CGNP_ENCODER_H_

#include "core/cgnp_config.h"
#include "data/tasks.h"
#include "nn/gnn_stack.h"

namespace cgnp {

class CgnpEncoder : public Module {
 public:
  CgnpEncoder(const CgnpConfig& cfg, int64_t feature_dim, Rng* rng);

  // View H_q for one support observation.
  Tensor Forward(const Graph& g, const QueryExample& example, Rng* rng) const;

  int64_t out_dim() const { return stack_.out_dim(); }

 private:
  GnnStack stack_;
};

}  // namespace cgnp

#endif  // CGNP_CORE_CGNP_ENCODER_H_
