#include "core/cgnp_searcher.h"

#include <string>
#include <utility>

namespace cgnp {

namespace {

class CgnpSearcher : public CommunitySearcher {
 public:
  explicit CgnpSearcher(std::shared_ptr<const CommunitySearchEngine> engine)
      : engine_(std::move(engine)) {}

  const std::string& name() const override {
    static const std::string kName = "cgnp";
    return kName;
  }

  StatusOr<QueryResult> Search(const Graph& g, NodeId query,
                               const std::vector<QueryExample>& labelled,
                               const QueryOptions& options) const override {
    // Engine::Query performs the full v1 validation (trained state,
    // threshold, node-id ranges) and fills backend/probs/timing.
    return engine_->Query(g, query, labelled, options);
  }

 private:
  const std::shared_ptr<const CommunitySearchEngine> engine_;
};

}  // namespace

StatusOr<std::unique_ptr<CommunitySearcher>> MakeCgnpSearcher(
    std::shared_ptr<const CommunitySearchEngine> engine) {
  if (engine == nullptr) {
    return InvalidArgumentError("MakeCgnpSearcher needs a non-null engine");
  }
  if (!engine->trained()) {
    return FailedPreconditionError(
        "MakeCgnpSearcher needs a trained engine (Fit it or restore a "
        "trained checkpoint first)");
  }
  return std::unique_ptr<CommunitySearcher>(
      new CgnpSearcher(std::move(engine)));
}

// Hook consumed by the registry's built-in table (cs/searcher.cc). The
// factory restores the engine named by SearcherConfig::checkpoint, so
// "cgnp" is selectable by string exactly like the classical backends.
SearcherFactory MakeCgnpSearcherFactory() {
  return [](const SearcherConfig& config)
             -> StatusOr<std::unique_ptr<CommunitySearcher>> {
    if (config.checkpoint.empty()) {
      return InvalidArgumentError(
          "the \"cgnp\" backend needs SearcherConfig::checkpoint (an "
          "engine checkpoint path); to wrap an in-memory engine use "
          "MakeCgnpSearcher (core/cgnp_searcher.h)");
    }
    CGNP_ASSIGN_OR_RETURN(
        CommunitySearchEngine engine,
        CommunitySearchEngine::LoadCheckpoint(config.checkpoint));
    if (!engine.trained()) {
      return FailedPreconditionError(
          "engine checkpoint holds no trained model: " + config.checkpoint);
    }
    return MakeCgnpSearcher(
        std::make_shared<const CommunitySearchEngine>(std::move(engine)));
  };
}

}  // namespace cgnp
