// The learned CGNP engine as a registry backend (cs/searcher.h).
//
// Two entry points:
//   * the registry: MakeSearcher("cgnp", {.checkpoint = "model.ckpt"})
//     restores an engine from a checkpoint and owns it -- backend choice
//     stays a pure string + config, like the classical algorithms;
//   * MakeCgnpSearcher(engine): wraps an engine the caller already holds
//     (fitted in-process or shared with a QueryServer) without another
//     checkpoint round-trip.
#ifndef CGNP_CORE_CGNP_SEARCHER_H_
#define CGNP_CORE_CGNP_SEARCHER_H_

#include <memory>

#include "core/engine.h"
#include "cs/searcher.h"

namespace cgnp {

// Wraps a trained engine as a CommunitySearcher named "cgnp". The engine
// must be trained (FailedPrecondition otherwise) and is shared: the
// adapter only ever calls const methods, which are thread-safe on an
// eval-mode model (core/cgnp.h).
StatusOr<std::unique_ptr<CommunitySearcher>> MakeCgnpSearcher(
    std::shared_ptr<const CommunitySearchEngine> engine);

}  // namespace cgnp

#endif  // CGNP_CORE_CGNP_SEARCHER_H_
