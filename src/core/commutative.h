// The commutative operation "big-plus" of CGNP (Section VI): combines the
// query-specific views {H_q} into one task context H, permutation-
// invariantly. Three options matching the paper's ablation (Table IV),
// plus one extension:
//   sum             H = sum_q H_q                              (Eq. 14)
//   average         H = (1/|Q|) sum_q H_q
//   attention       H = sum_q w_q H_q with learned weights     (Eq. 15-16)
//   cross-attention H[v] = sum_q w_q(v) H_q[v]                 (ANP-style)
//
// The attention weights follow Eq. 15-16: the per-view embeddings are
// linearly transformed by W1 / W2 and scored by scaled dot product; the
// paper shares one weight per view across all nodes, so the view embedding
// entering the score is the mean node embedding of that view.
// Cross-attention instead gives every node its own softmax over the views
// (keys = the mean view, queries = each view, both linearly transformed),
// following the Attentive Neural Process the paper cites as [54]. Scores
// are tanh-bounded before the softmax for numerical stability.
#ifndef CGNP_CORE_COMMUTATIVE_H_
#define CGNP_CORE_COMMUTATIVE_H_

#include <vector>

#include "core/cgnp_config.h"
#include "nn/module.h"

namespace cgnp {

class Commutative : public Module {
 public:
  Commutative(CommutativeOp op, int64_t dim, Rng* rng);

  // views: non-empty list of {n, d} tensors -> combined {n, d} context.
  Tensor Combine(const std::vector<Tensor>& views) const;

  CommutativeOp op() const { return op_; }

 private:
  CommutativeOp op_;
  int64_t dim_;
  Tensor w1_;  // {d, d}, attention only
  Tensor w2_;
};

}  // namespace cgnp

#endif  // CGNP_CORE_COMMUTATIVE_H_
