// Versioned binary checkpointing of CGNP models: a trained model is saved
// as (config, feature_dim, parameter tensors with shape headers) so it can
// be reconstructed in a fresh process -- train once, serve forever. Loading
// rebuilds the module tree from the stored config and then overwrites every
// parameter, validating tensor count and shapes along the way.
//
// Error model (API v1): checkpoint files are external input, so every
// load-path failure -- missing file, foreign magic, unsupported version,
// corrupt field, truncation -- is returned as a non-OK Status (typically
// NotFound or DataLoss) instead of aborting; a serving process can reject
// a bad file and keep running. Save paths report unwritable files and
// short writes the same way.
//
// CommunitySearchEngine has its own framing on top of this (it adds the
// task-sampling options and attribute dimensionality); see engine.h.
#ifndef CGNP_CORE_CHECKPOINT_H_
#define CGNP_CORE_CHECKPOINT_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/cgnp.h"

namespace cgnp {

// Whole-file save/load with magic + version framing.
Status CgnpModelSave(const CgnpModel& model, const std::string& path);
StatusOr<std::unique_ptr<CgnpModel>> CgnpModelLoad(const std::string& path);

// Stream-level payload (config + feature_dim + parameters, no framing),
// for embedding a model inside a larger checkpoint file.
void CgnpModelWrite(std::ostream& out, const CgnpModel& model);
StatusOr<std::unique_ptr<CgnpModel>> CgnpModelRead(std::istream& in);

// Field-by-field config (de)serialisation, shared by the model and engine
// checkpoint formats. Readers validate every field and return DataLoss on
// corrupt values or truncation.
void WriteCgnpConfig(std::ostream& out, const CgnpConfig& cfg);
StatusOr<CgnpConfig> ReadCgnpConfig(std::istream& in);
void WriteTaskConfig(std::ostream& out, const TaskConfig& cfg);
StatusOr<TaskConfig> ReadTaskConfig(std::istream& in);

}  // namespace cgnp

#endif  // CGNP_CORE_CHECKPOINT_H_
