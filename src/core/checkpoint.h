// Versioned binary checkpointing of CGNP models: a trained model is saved
// as (config, feature_dim, parameter tensors with shape headers) so it can
// be reconstructed in a fresh process -- train once, serve forever. Loading
// rebuilds the module tree from the stored config and then overwrites every
// parameter, validating tensor count and shapes along the way; any
// mismatch (or a truncated / foreign file) aborts instead of silently
// serving a corrupt model.
//
// CommunitySearchEngine has its own framing on top of this (it adds the
// task-sampling options and attribute dimensionality); see engine.h.
#ifndef CGNP_CORE_CHECKPOINT_H_
#define CGNP_CORE_CHECKPOINT_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "core/cgnp.h"

namespace cgnp {

// Whole-file save/load with magic + version framing.
void CgnpModelSave(const CgnpModel& model, const std::string& path);
std::unique_ptr<CgnpModel> CgnpModelLoad(const std::string& path);

// Stream-level payload (config + feature_dim + parameters, no framing),
// for embedding a model inside a larger checkpoint file.
void CgnpModelWrite(std::ostream& out, const CgnpModel& model);
std::unique_ptr<CgnpModel> CgnpModelRead(std::istream& in);

// Field-by-field config (de)serialisation, shared by the model and engine
// checkpoint formats.
void WriteCgnpConfig(std::ostream& out, const CgnpConfig& cfg);
CgnpConfig ReadCgnpConfig(std::istream& in);
void WriteTaskConfig(std::ostream& out, const TaskConfig& cfg);
TaskConfig ReadTaskConfig(std::istream& in);

}  // namespace cgnp

#endif  // CGNP_CORE_CHECKPOINT_H_
