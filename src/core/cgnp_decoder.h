// CGNP decoder rho (Section VI): predicts membership logits for a new query
// q* from the combined context H. All three variants end in the inner
// product of Eq. 17 -- <H'[q*], H'> -- optionally preceded by an MLP or GNN
// transformation of the context:
//   inner-product   H' = H                        (parameter-free)
//   MLP             H' = MLP(H)                   (node-independent)
//   GNN             H' = GNN(H)                   (adds message passing)
#ifndef CGNP_CORE_CGNP_DECODER_H_
#define CGNP_CORE_CGNP_DECODER_H_

#include <memory>

#include "core/cgnp_config.h"
#include "data/tasks.h"
#include "nn/gnn_stack.h"
#include "nn/mlp.h"

namespace cgnp {

class CgnpDecoder : public Module {
 public:
  CgnpDecoder(const CgnpConfig& cfg, Rng* rng);

  // Logits {n, 1} for query q given the task context H ({n, d}).
  Tensor Forward(const Graph& g, const Tensor& context, NodeId q,
                 Rng* rng) const;

  DecoderKind kind() const { return kind_; }

 private:
  DecoderKind kind_;
  std::unique_ptr<Mlp> mlp_;        // kMlp only
  std::unique_ptr<GnnStack> gnn_;   // kGnn only
};

}  // namespace cgnp

#endif  // CGNP_CORE_CGNP_DECODER_H_
