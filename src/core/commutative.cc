#include "core/commutative.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace cgnp {

Commutative::Commutative(CommutativeOp op, int64_t dim, Rng* rng)
    : op_(op), dim_(dim) {
  if (op_ == CommutativeOp::kAttention ||
      op_ == CommutativeOp::kCrossAttention) {
    w1_ = RegisterParameter(GlorotWeight(dim, dim, rng));
    w2_ = RegisterParameter(GlorotWeight(dim, dim, rng));
  }
}

Tensor Commutative::Combine(const std::vector<Tensor>& views) const {
  CGNP_CHECK(!views.empty());
  const int64_t q = static_cast<int64_t>(views.size());
  if (op_ == CommutativeOp::kSum || op_ == CommutativeOp::kAverage || q == 1) {
    Tensor acc = views[0];
    for (int64_t i = 1; i < q; ++i) acc = Add(acc, views[i]);
    if (op_ == CommutativeOp::kAverage && q > 1) {
      acc = MulScalar(acc, 1.0f / static_cast<float>(q));
    }
    return acc;
  }
  if (op_ == CommutativeOp::kCrossAttention) {
    // ANP-style: every node attends over the views. Keys come from the
    // mean view, queries from each view; tanh bounds the scores so the
    // manual softmax below cannot overflow.
    Tensor mean_view = views[0];
    for (int64_t i = 1; i < q; ++i) mean_view = Add(mean_view, views[i]);
    mean_view = MulScalar(mean_view, 1.0f / static_cast<float>(q));
    Tensor key = MatMul(mean_view, w2_);  // {n, d}
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim_));
    std::vector<Tensor> exp_scores;  // each {n, 1}
    Tensor denom;
    for (int64_t i = 0; i < q; ++i) {
      Tensor score = SumDim(Mul(MatMul(views[i], w1_), key), 1);  // {n,1}
      Tensor bounded = MulScalar(Tanh(MulScalar(score, scale)), 2.0f);
      Tensor e = Exp(bounded);
      exp_scores.push_back(e);
      denom = denom.Defined() ? Add(denom, e) : e;
    }
    Tensor acc;
    for (int64_t i = 0; i < q; ++i) {
      Tensor weight = Div(exp_scores[i], denom);       // {n, 1}
      Tensor scaled = Mul(views[i], weight);           // column broadcast
      acc = acc.Defined() ? Add(acc, scaled) : scaled;
    }
    return acc;
  }
  // Attention: per-view weights from scaled dot-product self-attention over
  // mean-pooled view embeddings, shared across all nodes (Eq. 15-16).
  Tensor m;  // {q, d}: one mean row per view
  for (int64_t i = 0; i < q; ++i) {
    Tensor row = MeanDim(views[i], 0);  // {1, d}
    m = m.Defined() ? ConcatRows(m, row) : row;
  }
  Tensor h1 = MatMul(m, w1_);
  Tensor h2 = MatMul(m, w2_);
  Tensor scores = MulScalar(MatMul(h1, h2, /*transpose_a=*/false,
                                   /*transpose_b=*/true),
                            1.0f / std::sqrt(static_cast<float>(dim_)));
  // Collapse the {q, q} score matrix to one weight per view and normalise.
  Tensor weights = Softmax(MeanDim(scores, 0));  // {1, q}
  Tensor weights_col = Reshape(weights, {q, 1});
  Tensor acc;
  for (int64_t i = 0; i < q; ++i) {
    Tensor wi = IndexSelectRows(weights_col, {i});  // {1, 1} scalar
    Tensor scaled = Mul(views[i], wi);
    acc = acc.Defined() ? Add(acc, scaled) : scaled;
  }
  return acc;
}

}  // namespace cgnp
