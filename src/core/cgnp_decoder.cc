#include "core/cgnp_decoder.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace cgnp {

CgnpDecoder::CgnpDecoder(const CgnpConfig& cfg, Rng* rng) : kind_(cfg.decoder) {
  switch (kind_) {
    case DecoderKind::kInnerProduct:
      break;
    case DecoderKind::kMlp: {
      // Paper: two-layer MLP with a wider hidden (512 at 128 model width);
      // keep the same 4x ratio at the configured width.
      std::vector<int64_t> dims;
      dims.push_back(cfg.hidden_dim);
      for (int64_t i = 0; i + 1 < cfg.decoder_layers; ++i) {
        dims.push_back(cfg.hidden_dim * 4);
      }
      dims.push_back(cfg.hidden_dim);
      mlp_ = std::make_unique<Mlp>(dims, rng);
      RegisterChild(mlp_.get());
      break;
    }
    case DecoderKind::kGnn: {
      std::vector<int64_t> dims(cfg.decoder_layers + 1, cfg.hidden_dim);
      gnn_ = std::make_unique<GnnStack>(cfg.encoder, dims, rng, cfg.dropout);
      RegisterChild(gnn_.get());
      break;
    }
  }
}

Tensor CgnpDecoder::Forward(const Graph& g, const Tensor& context, NodeId q,
                            Rng* rng) const {
  CGNP_CHECK_GE(q, 0);
  CGNP_CHECK_LT(q, context.rows());
  Tensor h = context;
  switch (kind_) {
    case DecoderKind::kInnerProduct:
      break;
    case DecoderKind::kMlp:
      h = mlp_->Forward(h);
      break;
    case DecoderKind::kGnn:
      h = gnn_->Forward(g, h, rng);
      break;
  }
  // Eq. 17: logits = <H[q], H> for every node.
  Tensor query_row = IndexSelectRows(h, {q});          // {1, d}
  return MatMul(h, query_row, /*transpose_a=*/false,
                /*transpose_b=*/true);                 // {n, 1}
}

}  // namespace cgnp
