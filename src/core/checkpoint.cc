#include "core/checkpoint.h"

#include <fstream>

#include "common/check.h"
#include "tensor/io.h"

namespace cgnp {

namespace {
constexpr uint32_t kModelMagic = 0x43474D4Du;  // "CGMM"
constexpr uint32_t kModelVersion = 1;
}  // namespace

void WriteCgnpConfig(std::ostream& out, const CgnpConfig& cfg) {
  io::WriteU32(out, static_cast<uint32_t>(cfg.encoder));
  io::WriteU32(out, static_cast<uint32_t>(cfg.commutative));
  io::WriteU32(out, static_cast<uint32_t>(cfg.decoder));
  io::WriteI64(out, cfg.hidden_dim);
  io::WriteI64(out, cfg.num_layers);
  io::WriteI64(out, cfg.decoder_layers);
  io::WriteF32(out, cfg.dropout);
  io::WriteF32(out, cfg.lr);
  io::WriteI64(out, cfg.epochs);
  io::WriteU64(out, cfg.seed);
}

CgnpConfig ReadCgnpConfig(std::istream& in) {
  CgnpConfig cfg;
  const uint32_t encoder = io::ReadU32(in);
  CGNP_CHECK_LE(encoder, static_cast<uint32_t>(GnnKind::kSage))
      << " corrupt checkpoint: bad encoder kind";
  cfg.encoder = static_cast<GnnKind>(encoder);
  const uint32_t commutative = io::ReadU32(in);
  CGNP_CHECK_LE(commutative,
                static_cast<uint32_t>(CommutativeOp::kCrossAttention))
      << " corrupt checkpoint: bad commutative op";
  cfg.commutative = static_cast<CommutativeOp>(commutative);
  const uint32_t decoder = io::ReadU32(in);
  CGNP_CHECK_LE(decoder, static_cast<uint32_t>(DecoderKind::kGnn))
      << " corrupt checkpoint: bad decoder kind";
  cfg.decoder = static_cast<DecoderKind>(decoder);
  cfg.hidden_dim = io::ReadI64(in);
  cfg.num_layers = io::ReadI64(in);
  cfg.decoder_layers = io::ReadI64(in);
  cfg.dropout = io::ReadF32(in);
  cfg.lr = io::ReadF32(in);
  cfg.epochs = io::ReadI64(in);
  cfg.seed = io::ReadU64(in);
  CGNP_CHECK_GT(cfg.hidden_dim, 0) << " corrupt checkpoint: hidden_dim";
  CGNP_CHECK_GT(cfg.num_layers, 0) << " corrupt checkpoint: num_layers";
  return cfg;
}

void WriteTaskConfig(std::ostream& out, const TaskConfig& cfg) {
  io::WriteI64(out, cfg.subgraph_size);
  io::WriteI64(out, cfg.shots);
  io::WriteI64(out, cfg.query_set_size);
  io::WriteI64(out, cfg.pos_samples);
  io::WriteI64(out, cfg.neg_samples);
  io::WriteU32(out, cfg.clamp_samples ? 1 : 0);
}

TaskConfig ReadTaskConfig(std::istream& in) {
  TaskConfig cfg;
  cfg.subgraph_size = io::ReadI64(in);
  cfg.shots = io::ReadI64(in);
  cfg.query_set_size = io::ReadI64(in);
  cfg.pos_samples = io::ReadI64(in);
  cfg.neg_samples = io::ReadI64(in);
  cfg.clamp_samples = io::ReadU32(in) != 0;
  CGNP_CHECK_GT(cfg.subgraph_size, 0) << " corrupt checkpoint: subgraph_size";
  return cfg;
}

void CgnpModelWrite(std::ostream& out, const CgnpModel& model) {
  WriteCgnpConfig(out, model.config());
  io::WriteI64(out, model.feature_dim());
  model.WriteParameters(out);
}

std::unique_ptr<CgnpModel> CgnpModelRead(std::istream& in) {
  const CgnpConfig cfg = ReadCgnpConfig(in);
  const int64_t feature_dim = io::ReadI64(in);
  CGNP_CHECK_GT(feature_dim, 0) << " corrupt checkpoint: feature_dim";
  // Build the module tree (parameter shapes derive from the config), then
  // overwrite the freshly initialised values with the stored ones.
  Rng rng(cfg.seed);
  auto model = std::make_unique<CgnpModel>(cfg, feature_dim, &rng);
  model->ReadParameters(in);
  model->SetTraining(false);  // checkpoints are served, not resumed
  return model;
}

void CgnpModelSave(const CgnpModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  CGNP_CHECK(out.good()) << " cannot write model checkpoint: " << path;
  io::WriteU32(out, kModelMagic);
  io::WriteU32(out, kModelVersion);
  CgnpModelWrite(out, model);
  CGNP_CHECK(out.good()) << " short write to model checkpoint: " << path;
}

std::unique_ptr<CgnpModel> CgnpModelLoad(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CGNP_CHECK(in.good()) << " cannot read model checkpoint: " << path;
  CGNP_CHECK_EQ(io::ReadU32(in), kModelMagic)
      << " not a cgnp model checkpoint: " << path;
  CGNP_CHECK_EQ(io::ReadU32(in), kModelVersion)
      << " unsupported model checkpoint version: " << path;
  auto model = CgnpModelRead(in);
  CGNP_CHECK(in.good()) << " truncated model checkpoint: " << path;
  return model;
}

}  // namespace cgnp
