#include "core/checkpoint.h"

#include <fstream>

#include "tensor/io.h"

namespace cgnp {

namespace {
constexpr uint32_t kModelMagic = 0x43474D4Du;  // "CGMM"
constexpr uint32_t kModelVersion = 1;
}  // namespace

void WriteCgnpConfig(std::ostream& out, const CgnpConfig& cfg) {
  io::WriteU32(out, static_cast<uint32_t>(cfg.encoder));
  io::WriteU32(out, static_cast<uint32_t>(cfg.commutative));
  io::WriteU32(out, static_cast<uint32_t>(cfg.decoder));
  io::WriteI64(out, cfg.hidden_dim);
  io::WriteI64(out, cfg.num_layers);
  io::WriteI64(out, cfg.decoder_layers);
  io::WriteF32(out, cfg.dropout);
  io::WriteF32(out, cfg.lr);
  io::WriteI64(out, cfg.epochs);
  io::WriteU64(out, cfg.seed);
}

StatusOr<CgnpConfig> ReadCgnpConfig(std::istream& in) {
  CgnpConfig cfg;
  const uint32_t encoder = io::ReadU32(in);
  const uint32_t commutative = io::ReadU32(in);
  const uint32_t decoder = io::ReadU32(in);
  cfg.hidden_dim = io::ReadI64(in);
  cfg.num_layers = io::ReadI64(in);
  cfg.decoder_layers = io::ReadI64(in);
  cfg.dropout = io::ReadF32(in);
  cfg.lr = io::ReadF32(in);
  cfg.epochs = io::ReadI64(in);
  cfg.seed = io::ReadU64(in);
  if (!in.good()) return DataLossError("truncated checkpoint: model config");
  if (encoder > static_cast<uint32_t>(GnnKind::kSage)) {
    return DataLossError("corrupt checkpoint: bad encoder kind");
  }
  if (commutative > static_cast<uint32_t>(CommutativeOp::kCrossAttention)) {
    return DataLossError("corrupt checkpoint: bad commutative op");
  }
  if (decoder > static_cast<uint32_t>(DecoderKind::kGnn)) {
    return DataLossError("corrupt checkpoint: bad decoder kind");
  }
  cfg.encoder = static_cast<GnnKind>(encoder);
  cfg.commutative = static_cast<CommutativeOp>(commutative);
  cfg.decoder = static_cast<DecoderKind>(decoder);
  if (cfg.hidden_dim <= 0) {
    return DataLossError("corrupt checkpoint: hidden_dim");
  }
  if (cfg.num_layers <= 0) {
    return DataLossError("corrupt checkpoint: num_layers");
  }
  return cfg;
}

void WriteTaskConfig(std::ostream& out, const TaskConfig& cfg) {
  io::WriteI64(out, cfg.subgraph_size);
  io::WriteI64(out, cfg.shots);
  io::WriteI64(out, cfg.query_set_size);
  io::WriteI64(out, cfg.pos_samples);
  io::WriteI64(out, cfg.neg_samples);
  io::WriteU32(out, cfg.clamp_samples ? 1 : 0);
}

StatusOr<TaskConfig> ReadTaskConfig(std::istream& in) {
  TaskConfig cfg;
  cfg.subgraph_size = io::ReadI64(in);
  cfg.shots = io::ReadI64(in);
  cfg.query_set_size = io::ReadI64(in);
  cfg.pos_samples = io::ReadI64(in);
  cfg.neg_samples = io::ReadI64(in);
  cfg.clamp_samples = io::ReadU32(in) != 0;
  if (!in.good()) return DataLossError("truncated checkpoint: task config");
  if (cfg.subgraph_size <= 0) {
    return DataLossError("corrupt checkpoint: subgraph_size");
  }
  return cfg;
}

void CgnpModelWrite(std::ostream& out, const CgnpModel& model) {
  WriteCgnpConfig(out, model.config());
  io::WriteI64(out, model.feature_dim());
  model.WriteParameters(out);
}

StatusOr<std::unique_ptr<CgnpModel>> CgnpModelRead(std::istream& in) {
  CGNP_ASSIGN_OR_RETURN(const CgnpConfig cfg, ReadCgnpConfig(in));
  const int64_t feature_dim = io::ReadI64(in);
  if (!in.good()) return DataLossError("truncated checkpoint: feature_dim");
  if (feature_dim <= 0) {
    return DataLossError("corrupt checkpoint: feature_dim");
  }
  // Build the module tree (parameter shapes derive from the config), then
  // overwrite the freshly initialised values with the stored ones.
  Rng rng(cfg.seed);
  auto model = std::make_unique<CgnpModel>(cfg, feature_dim, &rng);
  if (!model->ReadParameters(in)) {
    return DataLossError(
        "corrupt or truncated checkpoint: model parameters do not match "
        "the stored config's module structure");
  }
  model->SetTraining(false);  // checkpoints are served, not resumed
  return model;
}

Status CgnpModelSave(const CgnpModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    return NotFoundError("cannot write model checkpoint: " + path);
  }
  io::WriteU32(out, kModelMagic);
  io::WriteU32(out, kModelVersion);
  CgnpModelWrite(out, model);
  out.flush();
  if (!out.good()) {
    return DataLossError("short write to model checkpoint: " + path);
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<CgnpModel>> CgnpModelLoad(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return NotFoundError("cannot read model checkpoint: " + path);
  }
  const uint32_t magic = io::ReadU32(in);
  const uint32_t version = io::ReadU32(in);
  if (!in.good() || magic != kModelMagic) {
    return DataLossError("not a cgnp model checkpoint: " + path);
  }
  if (version != kModelVersion) {
    return DataLossError("unsupported model checkpoint version " +
                         std::to_string(version) + ": " + path);
  }
  CGNP_ASSIGN_OR_RETURN(auto model, CgnpModelRead(in));
  if (!in.good()) {
    return DataLossError("truncated model checkpoint: " + path);
  }
  return model;
}

}  // namespace cgnp
