#include "core/cgnp_encoder.h"

#include "common/check.h"
#include "meta/query_gnn.h"
#include "tensor/ops.h"

namespace cgnp {

namespace {

std::vector<int64_t> EncoderDims(const CgnpConfig& cfg, int64_t feature_dim) {
  std::vector<int64_t> dims;
  dims.push_back(feature_dim + 1);  // +1 for the label-indicator column
  for (int64_t i = 0; i < cfg.num_layers; ++i) dims.push_back(cfg.hidden_dim);
  return dims;
}

}  // namespace

CgnpEncoder::CgnpEncoder(const CgnpConfig& cfg, int64_t feature_dim, Rng* rng)
    : stack_(cfg.encoder, EncoderDims(cfg, feature_dim), rng, cfg.dropout) {
  RegisterChild(&stack_);
}

Tensor CgnpEncoder::Forward(const Graph& g, const QueryExample& example,
                            Rng* rng) const {
  CGNP_CHECK_EQ(g.feature_dim() + 1, stack_.in_dim());
  Tensor x = ConcatCols(LabelIndicatorColumn(g, example), g.FeatureTensor());
  return stack_.Forward(g, x, rng);
}

}  // namespace cgnp
