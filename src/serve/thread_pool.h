// Fixed-size worker pool used by the query server. Deliberately minimal:
// a mutex-guarded FIFO queue and N workers; no work stealing, no priorities.
// Community-search inference tasks are coarse (milliseconds each), so queue
// contention is negligible against the work itself.
#ifndef CGNP_SERVE_THREAD_POOL_H_
#define CGNP_SERVE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cgnp {
namespace serve {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  // Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn` for execution on some worker. Never blocks.
  void Submit(std::function<void()> fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace cgnp

#endif  // CGNP_SERVE_THREAD_POOL_H_
