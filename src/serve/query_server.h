// Multi-threaded batched inference server over a trained CGNP model.
//
// The serving pipeline per request mirrors CommunitySearchEngine::Search
// exactly (both build queries through BuildQueryTask with the same seed),
// so a multi-threaded server returns results identical to single-threaded
// Search. On top of that it adds:
//   * a context cache (see context_cache.h): repeated queries against the
//     same community reuse one encoder pass -- the paper's Algorithm 2
//     asymmetry (encode support once, decode queries cheaply) made explicit
//     at the system level;
//   * a worker pool: every request runs under a thread-local NoGradGuard
//     against an eval-mode model, the regime core/cgnp.h documents as safe
//     for concurrent const access;
//   * per-server statistics: throughput, latency percentiles and cache
//     effectiveness, for capacity planning and the serving benchmarks.
//
// Typical use (see examples/train_and_serve.cpp):
//   auto engine = CommunitySearchEngine::LoadCheckpoint("model.ckpt");
//   QueryServer server(engine, /*num_threads=*/8, /*cache_capacity=*/256);
//   auto responses = server.ServeBatch(requests);
#ifndef CGNP_SERVE_QUERY_SERVER_H_
#define CGNP_SERVE_QUERY_SERVER_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "core/engine.h"
#include "serve/context_cache.h"

namespace cgnp {
namespace serve {

// One community-search query. `graph` must stay alive until the response
// is returned; `graph_id` namespaces the context cache (give distinct ids
// to distinct graphs -- entries never collide across ids).
struct SearchRequest {
  const Graph* graph = nullptr;
  uint64_t graph_id = 0;
  NodeId query = -1;
  // Labelled support observations in `graph`'s node ids; empty = the
  // zero-shot setting (the query conditions the context alone).
  std::vector<QueryExample> support;
  float threshold = 0.5f;
};

struct SearchResponse {
  // Predicted community members in the request graph's ids (always
  // contains the query node), with the model's membership probability
  // aligned per member.
  std::vector<NodeId> members;
  std::vector<float> probs;
  double latency_ms = 0.0;
  bool cache_hit = false;  // context served from the cache
};

struct ServerStats {
  uint64_t requests = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;  // hits / requests
  double qps = 0.0;             // requests / wall-time over the serving window
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

struct ServeOptions {
  int num_threads = 4;
  // Max cached contexts; 0 disables the cache (every request re-encodes).
  int64_t cache_capacity = 256;
  // Task materialisation parameters -- must match the values the model was
  // trained under for the subgraph distribution to be in-distribution.
  TaskConfig tasks;
  int64_t attribute_dim = 0;
  // Seed for the deterministic BFS task sampling; use the engine's seed to
  // make server responses identical to engine.Search.
  uint64_t seed = 7;
};

class QueryServer {
 public:
  // `model` must outlive the server, be fully trained, and be in eval
  // mode (trainers and checkpoint loading both leave it there).
  QueryServer(const CgnpModel* model, ServeOptions options);
  // Convenience: serve a trained engine, inheriting its task config,
  // attribute dimensionality and seed (response parity with Search).
  QueryServer(const CommunitySearchEngine& engine, int num_threads,
              int64_t cache_capacity = 256);
  ~QueryServer() = default;

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Serves one request synchronously on the calling thread.
  SearchResponse Serve(const SearchRequest& request);

  // Serves a batch across the worker pool; blocks until every response is
  // ready. Responses are positionally aligned with the requests.
  std::vector<SearchResponse> ServeBatch(
      const std::vector<SearchRequest>& batch);

  ServerStats Stats() const;
  void ResetStats();

  const ServeOptions& options() const { return options_; }
  ContextCache& cache() { return cache_; }

 private:
  SearchResponse ServeOne(const SearchRequest& request);

  const CgnpModel* const model_;
  const ServeOptions options_;
  ContextCache cache_;
  ThreadPool pool_;

  // Serving-window stats; guarded by stats_mu_. Latency samples live in a
  // bounded ring (most recent kMaxLatencySamples requests) so a
  // long-lived server's memory and Stats() cost stay constant; request /
  // hit counters cover the whole window.
  static constexpr size_t kMaxLatencySamples = 16384;
  mutable std::mutex stats_mu_;
  std::vector<double> latencies_ms_;  // ring once full
  size_t latency_next_ = 0;           // ring write position
  uint64_t stat_requests_ = 0;
  uint64_t stat_cache_hits_ = 0;
  std::chrono::steady_clock::time_point window_start_{};
  std::chrono::steady_clock::time_point window_end_{};
  bool window_open_ = false;
};

}  // namespace serve
}  // namespace cgnp

#endif  // CGNP_SERVE_QUERY_SERVER_H_
