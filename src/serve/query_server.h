// Multi-threaded batched inference server over any registered
// community-search backend.
//
// Backends are selected by registry name (ServeOptions::backend): the
// learned "cgnp" engine or any classical adapter ("kcore", "ktruss",
// "acq", ... -- see cs/searcher.h). The cgnp serving pipeline per request
// mirrors CommunitySearchEngine::Search exactly (both build queries
// through BuildQueryTask with the same seed), so a multi-threaded server
// returns results identical to single-threaded Search. On top of that it
// adds:
//   * a context cache (see context_cache.h): repeated queries against the
//     same community reuse one encoder pass -- the paper's Algorithm 2
//     asymmetry (encode support once, decode queries cheaply) made explicit
//     at the system level (cgnp backend only; classical answers are cheap
//     and stateless);
//   * a worker pool: every request runs under a thread-local NoGradGuard
//     against an eval-mode model, the regime core/cgnp.h documents as safe
//     for concurrent const access;
//   * per-server statistics: throughput, latency percentiles, error counts
//     and cache effectiveness, attributed to the serving backend.
//
// Error model (API v1): a malformed request -- null graph, out-of-range
// node ids, bad threshold -- never aborts the process; the per-request
// Status travels in SearchResponse::status and errored requests are
// counted in ServerStats::errors. Construction through Create() returns
// NotFound for unknown backend names.
//
// Typical use (see examples/train_and_serve.cpp):
//   auto engine = CommunitySearchEngine::LoadCheckpoint("model.ckpt");
//   serve::ServeOptions opt;
//   opt.num_threads = 8;
//   auto server = QueryServer::Create(&engine.value(), opt);
//   auto responses = (*server)->ServeBatch(requests);
// or, backend by name:
//   serve::ServeOptions opt;
//   opt.backend = "ktruss";
//   auto server = QueryServer::Create(nullptr, opt);
#ifndef CGNP_SERVE_QUERY_SERVER_H_
#define CGNP_SERVE_QUERY_SERVER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/json.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "cs/searcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/context_cache.h"

namespace cgnp {
namespace serve {

// One community-search query. `graph` must stay alive until the response
// is returned; `graph_id` namespaces the context cache (give distinct ids
// to distinct graphs -- entries never collide across ids).
struct SearchRequest {
  const Graph* graph = nullptr;
  // Namespaces the context cache. For graphs opened with OpenMappedGraph,
  // Graph::storage_fingerprint() is a ready-made, process-stable value.
  uint64_t graph_id = 0;
  NodeId query = -1;
  // Version of the graph this request runs against (GraphDelta::version
  // lineage). Static serving leaves it 0; dynamic serving stamps it so
  // cached contexts never cross versions -- see ContextCache and
  // NotifyGraphUpdate.
  uint64_t graph_version = 0;
  // Labelled support observations in `graph`'s node ids; empty = the
  // zero-shot setting (the query conditions the context alone).
  std::vector<QueryExample> support;
  float threshold = 0.5f;
};

struct SearchResponse {
  // Per-request outcome; when non-OK, members/probs are empty and only
  // status/backend/threshold/latency_ms are meaningful. Malformed requests
  // error here instead of aborting the server.
  Status status;
  // Predicted community members in the request graph's ids (for the
  // learned backend: always contains the query node, with the model's
  // membership probability aligned per member; classical backends leave
  // `probs` empty -- their membership is crisp).
  std::vector<NodeId> members;
  std::vector<float> probs;
  // Attribution: which backend answered, at which threshold (bench runs
  // mix backends, so every response is self-describing).
  std::string backend;
  float threshold = 0.5f;
  double latency_ms = 0.0;
  bool cache_hit = false;  // context served from the cache (cgnp only)
  // The request consulted the context cache (cgnp model path reached the
  // lookup). Classical backends never do; this is the honest hit-rate
  // denominator in ServerStats.
  bool cache_eligible = false;
  // Per-request stage-timing tree (pre-order; depth 0 = top-level stage:
  // task_build / encode / decode for the cgnp path, search for registry
  // backends). Cache hits have no "encode" stage -- the paper's
  // Algorithm 2 asymmetry, visible per response. Empty when the obs layer
  // is disabled (compile-time CGNP_OBS=OFF or runtime obs::SetEnabled).
  std::vector<obs::StageTiming> stages;
};

// Per-stage latency summary over the serving window, aggregated from the
// depth-0 spans of every traced request.
struct StageStats {
  std::string stage;
  uint64_t count = 0;
  double p50_ms = 0.0;
  double mean_ms = 0.0;
  double total_ms = 0.0;
};

struct ServerStats {
  std::string backend;  // registry name serving this window (attribution;
                        // per-request thresholds travel in SearchResponse)
  uint64_t requests = 0;
  uint64_t errors = 0;     // requests answered with a non-OK status
  // Cache effectiveness over CACHE-ELIGIBLE requests only (cgnp model
  // path; classical backends never consult the cache and do not dilute
  // the rate): hit_rate = hits / eligible, misses = eligible - hits.
  uint64_t cache_eligible = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;  // capacity displacements this window
  double cache_hit_rate = 0.0;   // hits / eligible (0 when none eligible)
  // Dynamic serving: graph updates announced through NotifyGraphUpdate
  // this window, and the scoped-invalidation outcome across them --
  // entries evicted (dirty-region overlap) vs re-keyed to the new version
  // (provably still exact).
  uint64_t updates = 0;
  uint64_t cache_invalidated = 0;
  uint64_t cache_retained = 0;
  double qps = 0.0;             // requests / wall-time over the serving window
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  // Running extremes over the WHOLE window, tracked independently of the
  // bounded percentile reservoir -- the true max cannot be rotated out by
  // reservoir wraparound.
  double min_ms = 0.0;
  double max_ms = 0.0;
  // Per-stage breakdown (task_build / encode / decode / search), sorted
  // by stage name. Empty when the obs layer is off.
  std::vector<StageStats> stages;
};

// JSON rendering of a stats window (the same Json value type the bench
// reports use); tools/obs_dump --format=stats prints it.
bench::Json ServerStatsToJson(const ServerStats& stats);

struct ServeOptions {
  // Backend registry name (cs/searcher.h). "cgnp" serves the engine passed
  // to Create / the engine constructor (or a checkpoint via
  // `searcher.checkpoint`); classical names need no engine at all.
  std::string backend = "cgnp";
  // Construction knobs forwarded to the backend factory (classical k,
  // cgnp checkpoint path, ...).
  SearcherConfig searcher;
  int num_threads = 4;
  // Max cached contexts; 0 disables the cache (every request re-encodes).
  int64_t cache_capacity = 256;
  // Task materialisation parameters -- must match the values the model was
  // trained under for the subgraph distribution to be in-distribution.
  // (cgnp backend only; Create fills them from the engine.)
  TaskConfig tasks;
  int64_t attribute_dim = 0;
  // Seed for the deterministic BFS task sampling; use the engine's seed to
  // make server responses identical to engine.Search.
  uint64_t seed = 7;
  // Size of the bounded latency reservoir behind the Stats() percentiles
  // (most recent N requests). Counters and min/max always cover the whole
  // window regardless.
  int64_t latency_reservoir = 16384;
};

// Opens a binary graph container (docs/GRAPH_FORMAT.md) for serving: the
// returned Graph is backed by a read-only mmap of the file -- million-node
// graphs become servable in O(pages touched), no vectors materialised --
// and shared ownership lets it outlive the opening scope while requests
// are in flight (SearchRequest::graph must stay alive until the response
// returns). Use graph->storage_fingerprint() as the request graph_id so
// cache entries stay stable across server restarts on the same file.
// Errors follow the container's model: NotFound for a missing file,
// DataLoss for a corrupt one -- a serving process rejects the file and
// keeps running.
StatusOr<std::shared_ptr<const Graph>> OpenMappedGraph(
    const std::string& path);

class QueryServer {
 public:
  // Status-returning construction with backend selection -- the v1 entry
  // point. For backend "cgnp", `engine` must be a trained engine that
  // outlives the server (or ServeOptions::searcher.checkpoint must name an
  // engine checkpoint, which the server restores and owns); task config,
  // attribute dim and seed are inherited from it for Search parity.
  // Classical backends ignore `engine`. Unknown names return NotFound.
  static StatusOr<std::unique_ptr<QueryServer>> Create(
      const CommunitySearchEngine* engine, ServeOptions options);

  ~QueryServer() = default;

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Serves one request synchronously on the calling thread. Never aborts
  // on request content; inspect response.status.
  SearchResponse Serve(const SearchRequest& request);

  // Serves a batch across the worker pool; blocks until every response is
  // ready. Responses are positionally aligned with the requests.
  std::vector<SearchResponse> ServeBatch(
      const std::vector<SearchRequest>& batch);

  // Announces that graph `graph_id` moved to `new_version` with the sorted
  // node set `dirty` edited since the cached entries' versions. Runs a
  // scoped invalidation over the context cache: entries whose recorded
  // task subgraph avoids the dirty region are re-keyed to the new version
  // (their contexts are bit-identical there), the rest are dropped.
  // Returns the sweep outcome; counted in Stats() and the
  // cgnp_serve_updates/cache_invalidated/cache_retained metric families.
  ContextCache::InvalidationResult NotifyGraphUpdate(
      uint64_t graph_id, uint64_t new_version,
      const std::vector<NodeId>& dirty);

  ServerStats Stats() const;
  void ResetStats();

  const std::string& backend_name() const { return backend_name_; }
  const ServeOptions& options() const { return options_; }
  ContextCache& cache() { return cache_; }

 private:
  QueryServer(const CgnpModel* model,
              std::unique_ptr<CommunitySearcher> backend,
              std::shared_ptr<const CommunitySearchEngine> owned_engine,
              ServeOptions options);

  SearchResponse ServeOne(const SearchRequest& request);
  // The backend dispatch: fills members/probs/cache_hit, returns the
  // request outcome.
  Status AnswerRequest(const SearchRequest& request, SearchResponse* resp);
  // Folds one request's depth-0 spans into the per-server stage
  // histograms (and the global per-backend/per-stage registry metrics).
  void RecordStages(const std::vector<obs::StageTiming>& stages);

  // Exactly one of model_ / backend_ drives AnswerRequest: model_ for the
  // cached cgnp pipeline, backend_ for registry backends.
  const CgnpModel* model_ = nullptr;
  std::unique_ptr<CommunitySearcher> backend_;
  // Keeps a checkpoint-restored engine alive when the server owns it.
  std::shared_ptr<const CommunitySearchEngine> owned_engine_;
  std::string backend_name_;
  const ServeOptions options_;
  ContextCache cache_;
  ThreadPool pool_;

  // Process-wide per-backend metrics (labelled {backend=...} in the
  // default registry); resolved once at construction, sharded/lock-free
  // to bump. Null only when a registry lookup is impossible.
  struct BackendMetrics {
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* updates = nullptr;
    obs::Counter* cache_invalidated = nullptr;
    obs::Counter* cache_retained = nullptr;
    obs::Histogram* latency_ms = nullptr;
    obs::Gauge* queue_depth = nullptr;
  };
  BackendMetrics metrics_;

  // Serving-window stats; guarded by stats_mu_. Latency samples live in a
  // bounded ring (most recent `options_.latency_reservoir` requests) so a
  // long-lived server's memory and Stats() cost stay constant; counters
  // and the min/max extremes cover the whole window.
  const size_t latency_reservoir_;
  mutable std::mutex stats_mu_;
  std::vector<double> latencies_ms_;  // ring once full
  size_t latency_next_ = 0;           // ring write position
  uint64_t stat_requests_ = 0;
  uint64_t stat_errors_ = 0;
  uint64_t stat_cache_hits_ = 0;
  uint64_t stat_cache_eligible_ = 0;
  uint64_t stat_updates_ = 0;
  uint64_t stat_cache_invalidated_ = 0;
  uint64_t stat_cache_retained_ = 0;
  double stat_min_ms_ = 0.0;  // valid iff stat_requests_ > 0
  double stat_max_ms_ = 0.0;
  // Eviction count at the last ResetStats; ServerStats windows the
  // cache's lifetime counter against it.
  uint64_t cache_evictions_at_reset_ = 0;
  std::chrono::steady_clock::time_point window_start_{};
  std::chrono::steady_clock::time_point window_end_{};
  bool window_open_ = false;
  // Per-server per-stage accumulators for the window, keyed by stage
  // name; guarded by stats_mu_ alongside the counters above. Samples are
  // a bounded ring like latencies_ms_; count/total cover the window.
  struct StageAccum {
    uint64_t count = 0;
    double total_ms = 0.0;
    std::vector<double> samples;  // ring once full
    size_t next = 0;
    // Global cgnp_serve_stage_ms{backend,stage} histogram, resolved on
    // first sighting of the stage so steady state never hits the
    // registry mutex.
    obs::Histogram* global = nullptr;
  };
  std::map<std::string, StageAccum> stage_accums_;
};

}  // namespace serve
}  // namespace cgnp

#endif  // CGNP_SERVE_QUERY_SERVER_H_
