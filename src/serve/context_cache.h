// LRU cache of task contexts -- the serving-time expression of the paper's
// key inference asymmetry (Algorithm 2): the support set is encoded ONCE
// into a context H, after which every query is a single cheap decoder pass.
// Entries are keyed by (graph id, task fingerprint, graph version), where
// the fingerprint hashes the materialised local task (subgraph node list +
// support set in local ids), so a hit is only possible when the encoder
// would have been fed bit-identical inputs -- cached and fresh contexts are
// therefore numerically identical, not merely approximately so.
//
// Dynamic graphs and scoped invalidation. The version component makes the
// cache safe under graph mutation: requests against version N never see
// contexts encoded at version M != N. Rather than flushing everything on
// every update, ScopedInvalidate exploits the determinism of the task
// sampler: a task's subgraph is materialised by reading the adjacency of
// exactly the nodes in its node list, so an entry whose recorded node set
// is disjoint from the update's dirty region would be rebuilt bit-identical
// at the new version -- its context is still exact and the entry is
// RE-KEYED to the new version instead of evicted. Only entries touching the
// dirty region (or whose coverage was never recorded) are dropped.
//
// Thread safety: all methods are safe to call concurrently. Cached Tensor
// values are produced under NoGradGuard (no tape, no grad) and treated as
// immutable by all readers.
#ifndef CGNP_SERVE_CONTEXT_CACHE_H_
#define CGNP_SERVE_CONTEXT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "tensor/tensor.h"

namespace cgnp {
namespace serve {

// 64-bit FNV-1a over the local task's identity: subgraph node list, local
// query, and every support example's (query, pos, neg) lists. Two tasks
// with equal fingerprints feed the encoder identical inputs (modulo hash
// collisions, ~2^-64 per pair).
uint64_t TaskFingerprint(const LocalQueryTask& task);

class ContextCache {
 public:
  struct Key {
    uint64_t graph_id = 0;
    uint64_t fingerprint = 0;
    // Graph version the context was encoded at (0 for static serving --
    // the pre-dynamic behaviour is the default).
    uint64_t version = 0;
    bool operator==(const Key& o) const {
      return graph_id == o.graph_id && fingerprint == o.fingerprint &&
             version == o.version;
    }
  };

  // Outcome of one ScopedInvalidate sweep over a graph's entries.
  struct InvalidationResult {
    int64_t evicted = 0;   // entries touching the dirty region (or with
                           // unrecorded coverage) dropped
    int64_t retained = 0;  // disjoint entries re-keyed to the new version
  };

  // `capacity` = max resident contexts; <= 0 disables caching entirely
  // (Get always misses, Put is a no-op).
  explicit ContextCache(int64_t capacity);

  // On hit, copies the cached context into *out, promotes the entry to
  // most-recently-used, and returns true.
  bool Get(const Key& key, Tensor* out);
  // Inserts (or refreshes) an entry, evicting the least-recently-used
  // entry when over capacity. `nodes` records which parent-graph nodes the
  // cached context depends on (the task's subgraph node list; will be
  // sorted) -- the coverage ScopedInvalidate checks against. The two-arg
  // overload records no coverage, so such entries never survive a scoped
  // invalidation of their graph.
  void Put(const Key& key, Tensor context);
  void Put(const Key& key, Tensor context, std::vector<NodeId> nodes);

  // Version rollover for `graph_id` after an update touching the sorted
  // node set `dirty`: entries of other graphs are untouched; entries of
  // this graph are evicted when their recorded coverage intersects `dirty`
  // (or was never recorded), and re-keyed to `new_version` otherwise --
  // their contexts are provably bit-identical at the new version (the
  // deterministic sampler reads only covered nodes' adjacency). LRU order
  // is preserved across re-keying.
  InvalidationResult ScopedInvalidate(uint64_t graph_id, uint64_t new_version,
                                      const std::vector<NodeId>& dirty);

  void Clear();

  int64_t size() const;
  int64_t capacity() const { return capacity_; }
  uint64_t hits() const;
  uint64_t misses() const;
  // Entries displaced by capacity pressure over the cache's lifetime
  // (Clear() does not count as eviction).
  uint64_t evictions() const;
  // Entries dropped by ScopedInvalidate over the cache's lifetime.
  uint64_t invalidations() const;

 private:
  struct Entry {
    Key key;
    Tensor context;
    // Sorted parent-graph nodes the context depends on; empty = unknown.
    std::vector<NodeId> nodes;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Fingerprints are already well-mixed; fold in graph id and version.
      return static_cast<size_t>(k.fingerprint ^
                                 (k.graph_id * 0x9E3779B97F4A7C15ull) ^
                                 (k.version * 0xC2B2AE3D27D4EB4Full));
    }
  };

  const int64_t capacity_;
  mutable std::mutex mu_;
  // Most-recently-used at the front.
  std::list<Entry> lru_;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace serve
}  // namespace cgnp

#endif  // CGNP_SERVE_CONTEXT_CACHE_H_
