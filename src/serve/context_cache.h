// LRU cache of task contexts -- the serving-time expression of the paper's
// key inference asymmetry (Algorithm 2): the support set is encoded ONCE
// into a context H, after which every query is a single cheap decoder pass.
// Entries are keyed by (graph id, task fingerprint), where the fingerprint
// hashes the materialised local task (subgraph node list + support set in
// local ids), so a hit is only possible when the encoder would have been
// fed bit-identical inputs -- cached and fresh contexts are therefore
// numerically identical, not merely approximately so.
//
// Thread safety: all methods are safe to call concurrently. Cached Tensor
// values are produced under NoGradGuard (no tape, no grad) and treated as
// immutable by all readers.
#ifndef CGNP_SERVE_CONTEXT_CACHE_H_
#define CGNP_SERVE_CONTEXT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/engine.h"
#include "tensor/tensor.h"

namespace cgnp {
namespace serve {

// 64-bit FNV-1a over the local task's identity: subgraph node list, local
// query, and every support example's (query, pos, neg) lists. Two tasks
// with equal fingerprints feed the encoder identical inputs (modulo hash
// collisions, ~2^-64 per pair).
uint64_t TaskFingerprint(const LocalQueryTask& task);

class ContextCache {
 public:
  struct Key {
    uint64_t graph_id = 0;
    uint64_t fingerprint = 0;
    bool operator==(const Key& o) const {
      return graph_id == o.graph_id && fingerprint == o.fingerprint;
    }
  };

  // `capacity` = max resident contexts; <= 0 disables caching entirely
  // (Get always misses, Put is a no-op).
  explicit ContextCache(int64_t capacity);

  // On hit, copies the cached context into *out, promotes the entry to
  // most-recently-used, and returns true.
  bool Get(const Key& key, Tensor* out);
  // Inserts (or refreshes) an entry, evicting the least-recently-used
  // entry when over capacity.
  void Put(const Key& key, Tensor context);

  void Clear();

  int64_t size() const;
  int64_t capacity() const { return capacity_; }
  uint64_t hits() const;
  uint64_t misses() const;
  // Entries displaced by capacity pressure over the cache's lifetime
  // (Clear() does not count as eviction).
  uint64_t evictions() const;

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Fingerprints are already well-mixed; fold in the graph id.
      return static_cast<size_t>(k.fingerprint ^
                                 (k.graph_id * 0x9E3779B97F4A7C15ull));
    }
  };

  const int64_t capacity_;
  mutable std::mutex mu_;
  // Most-recently-used at the front.
  std::list<std::pair<Key, Tensor>> lru_;
  std::unordered_map<Key, std::list<std::pair<Key, Tensor>>::iterator, KeyHash>
      index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace serve
}  // namespace cgnp

#endif  // CGNP_SERVE_CONTEXT_CACHE_H_
