#include "serve/dynamic_server.h"

#include <utility>

#include "obs/log.h"
#include "obs/trace.h"

namespace cgnp {
namespace serve {

DynamicGraphServer::DynamicGraphServer(
    std::shared_ptr<DynamicCommunityIndex> index,
    std::shared_ptr<const Graph> base, std::unique_ptr<QueryServer> server,
    Options options)
    : options_(std::move(options)),
      index_(std::move(index)),
      server_(std::move(server)),
      snapshot_(std::move(base)),
      snapshot_version_(index_->version()) {}

StatusOr<std::unique_ptr<DynamicGraphServer>> DynamicGraphServer::Create(
    const CommunitySearchEngine* engine, std::shared_ptr<const Graph> base,
    Options options) {
  if (base == nullptr) {
    return InvalidArgumentError(
        "DynamicGraphServer needs a base snapshot (got null)");
  }
  CGNP_ASSIGN_OR_RETURN(std::shared_ptr<DynamicCommunityIndex> index,
                        DynamicCommunityIndex::Create(base));
  // The incremental backends answer from this server's own index; wire it
  // through so callers select them purely by name.
  if (options.serve.backend == "kcore_inc" ||
      options.serve.backend == "ktruss_inc") {
    options.serve.searcher.dynamic_index = index;
  }
  CGNP_ASSIGN_OR_RETURN(std::unique_ptr<QueryServer> server,
                        QueryServer::Create(engine, options.serve));
  return std::unique_ptr<DynamicGraphServer>(
      new DynamicGraphServer(std::move(index), std::move(base),
                             std::move(server), std::move(options)));
}

Status DynamicGraphServer::ApplyUpdate(const GraphEdit& edit) {
  const uint64_t before = index_->version();
  const Status s = index_->Apply(edit);
  {
    std::unique_lock lock(mu_);
    if (!s.ok()) {
      ++updates_rejected_;
    } else if (index_->version() != before) {
      ++updates_applied_;
      ++edits_since_compact_;
    }
  }
  if (!s.ok()) return s;
  bool compact_now = false;
  {
    std::shared_lock lock(mu_);
    compact_now = options_.compact_every > 0 &&
                  edits_since_compact_ >= options_.compact_every;
  }
  if (compact_now) Compact();
  return Status::Ok();
}

Status DynamicGraphServer::InsertEdge(NodeId u, NodeId v) {
  return ApplyUpdate(GraphEdit{/*insert=*/true, u, v});
}

Status DynamicGraphServer::DeleteEdge(NodeId u, NodeId v) {
  return ApplyUpdate(GraphEdit{/*insert=*/false, u, v});
}

SearchResponse DynamicGraphServer::Serve(SearchRequest request) {
  // Pin the serving snapshot: the shared_ptr copy keeps it alive even if
  // a concurrent compaction rolls snapshot_ forward mid-request.
  std::shared_ptr<const Graph> pinned;
  {
    std::shared_lock lock(mu_);
    pinned = snapshot_;
    request.graph_version = snapshot_version_;
  }
  request.graph = pinned.get();
  request.graph_id = options_.graph_id;
  return server_->Serve(request);
}

ContextCache::InvalidationResult DynamicGraphServer::Compact() {
  CGNP_TRACE_SPAN("compact");
  std::unique_lock lock(mu_);
  if (index_->delta_depth() == 0) return {};
  // Dirty set BEFORE compaction (the rebased delta starts clean).
  const std::vector<NodeId> dirty = index_->DirtyNodes();
  std::shared_ptr<const Graph> snapshot = index_->Compact();
  const uint64_t new_version = index_->version();
  const ContextCache::InvalidationResult result =
      server_->NotifyGraphUpdate(options_.graph_id, new_version, dirty);
  snapshot_ = std::move(snapshot);
  snapshot_version_ = new_version;
  edits_since_compact_ = 0;
  ++compactions_;
  CGNP_LOG(kDebug, "serve_compaction")
      .Num("version", static_cast<double>(new_version))
      .Num("dirty_nodes", static_cast<double>(dirty.size()))
      .Num("cache_evicted", static_cast<double>(result.evicted))
      .Num("cache_retained", static_cast<double>(result.retained));
  return result;
}

DynamicGraphServer::DynamicStats DynamicGraphServer::dynamic_stats() const {
  DynamicStats s;
  s.version = index_->version();
  s.delta_depth = index_->delta_depth();
  std::shared_lock lock(mu_);
  s.snapshot_version = snapshot_version_;
  s.updates_applied = updates_applied_;
  s.updates_rejected = updates_rejected_;
  s.compactions = compactions_;
  return s;
}

std::shared_ptr<const Graph> DynamicGraphServer::snapshot() const {
  std::shared_lock lock(mu_);
  return snapshot_;
}

}  // namespace serve
}  // namespace cgnp
