#include "serve/query_server.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <utility>

#include "common/check.h"
#include "tensor/ops.h"

namespace cgnp {
namespace serve {

namespace {

double PercentileOf(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

const CgnpModel* CheckedEngineModel(const CommunitySearchEngine& engine) {
  CGNP_CHECK(engine.trained())
      << " QueryServer needs a fitted or loaded engine";
  return engine.model();
}

ServeOptions FromEngineOptions(const CommunitySearchEngine& engine,
                               int num_threads, int64_t cache_capacity) {
  ServeOptions o;
  o.num_threads = num_threads;
  o.cache_capacity = cache_capacity;
  o.tasks = engine.options().tasks;
  o.attribute_dim = engine.attribute_dim();
  o.seed = engine.options().seed;
  return o;
}

}  // namespace

QueryServer::QueryServer(const CgnpModel* model,
                         std::unique_ptr<CommunitySearcher> backend,
                         std::shared_ptr<const CommunitySearchEngine>
                             owned_engine,
                         ServeOptions options)
    : model_(model),
      backend_(std::move(backend)),
      owned_engine_(std::move(owned_engine)),
      backend_name_(options.backend),
      options_(std::move(options)),
      cache_(options_.cache_capacity),
      pool_(options_.num_threads) {
  CGNP_CHECK((model_ != nullptr) != (backend_ != nullptr))
      << " exactly one of model/backend must drive the server";
}

QueryServer::QueryServer(const CgnpModel* model, ServeOptions options)
    : QueryServer(model, /*backend=*/nullptr, /*owned_engine=*/nullptr,
                  [&options, model] {
                    CGNP_CHECK(model != nullptr)
                        << " QueryServer needs a trained model";
                    // Concurrent const access is only safe in eval mode;
                    // see the thread-safety contract in core/cgnp.h.
                    CGNP_CHECK(!model->training())
                        << " QueryServer requires an eval-mode model "
                           "(SetTraining(false))";
                    options.backend = "cgnp";
                    return std::move(options);
                  }()) {}

QueryServer::QueryServer(const CommunitySearchEngine& engine, int num_threads,
                         int64_t cache_capacity)
    : QueryServer(CheckedEngineModel(engine),
                  FromEngineOptions(engine, num_threads, cache_capacity)) {}

StatusOr<std::unique_ptr<QueryServer>> QueryServer::Create(
    const CommunitySearchEngine* engine, ServeOptions options) {
  if (options.num_threads <= 0) {
    return InvalidArgumentError("num_threads must be positive, got " +
                                std::to_string(options.num_threads));
  }
  if (options.cache_capacity < 0) {
    return InvalidArgumentError("cache_capacity must be >= 0, got " +
                                std::to_string(options.cache_capacity));
  }
  // Unknown names fall through to MakeSearcher below, which returns
  // NotFound listing the registered backends.
  if (options.backend == "cgnp") {
    std::shared_ptr<const CommunitySearchEngine> owned;
    if (engine == nullptr && !options.searcher.checkpoint.empty()) {
      CGNP_ASSIGN_OR_RETURN(
          CommunitySearchEngine restored,
          CommunitySearchEngine::LoadCheckpoint(options.searcher.checkpoint));
      owned = std::make_shared<const CommunitySearchEngine>(
          std::move(restored));
      engine = owned.get();
    }
    if (engine == nullptr) {
      return InvalidArgumentError(
          "the \"cgnp\" backend needs a trained engine (pass one to "
          "Create, or set ServeOptions::searcher.checkpoint)");
    }
    if (!engine->trained()) {
      return FailedPreconditionError(
          "the \"cgnp\" backend needs a trained engine: Fit it or restore "
          "a trained checkpoint first");
    }
    // Inherit the task materialisation parameters from the engine so
    // served responses are identical to engine.Search.
    options.tasks = engine->options().tasks;
    options.attribute_dim = engine->attribute_dim();
    options.seed = engine->options().seed;
    return std::unique_ptr<QueryServer>(
        new QueryServer(engine->model(), /*backend=*/nullptr,
                        std::move(owned), std::move(options)));
  }
  CGNP_ASSIGN_OR_RETURN(auto backend,
                        MakeSearcher(options.backend, options.searcher));
  return std::unique_ptr<QueryServer>(
      new QueryServer(/*model=*/nullptr, std::move(backend),
                      /*owned_engine=*/nullptr, std::move(options)));
}

Status QueryServer::AnswerRequest(const SearchRequest& request,
                                  SearchResponse* resp) {
  if (request.graph == nullptr) {
    return InvalidArgumentError("SearchRequest without a graph");
  }
  QueryOptions query_options;
  query_options.threshold = request.threshold;

  if (backend_ != nullptr) {
    // Registry backend: it performs the full input validation itself.
    CGNP_ASSIGN_OR_RETURN(
        QueryResult result,
        backend_->Search(*request.graph, request.query, request.support,
                         query_options));
    resp->members = std::move(result.members);
    resp->probs = std::move(result.probs);
    return Status::Ok();
  }

  // cgnp pipeline with the context cache. NaN fails both comparisons.
  if (!(request.threshold >= 0.0f && request.threshold <= 1.0f)) {
    return InvalidArgumentError("threshold must be in [0, 1], got " +
                                std::to_string(request.threshold));
  }
  // Inference never records tape (thread-local switch; see tensor/tensor.h).
  NoGradGuard no_grad;
  CGNP_ASSIGN_OR_RETURN(
      LocalQueryTask task,
      BuildQueryTask(*request.graph, request.query, request.support,
                     options_.tasks, options_.attribute_dim, options_.seed));
  if (task.graph.feature_dim() != model_->feature_dim()) {
    return InvalidArgumentError(
        "request graph features incompatible with the served model: task "
        "feature_dim " + std::to_string(task.graph.feature_dim()) +
        " vs model " + std::to_string(model_->feature_dim()));
  }

  const ContextCache::Key key{request.graph_id, TaskFingerprint(task)};
  Tensor context;
  if (cache_.Get(key, &context)) {
    resp->cache_hit = true;
  } else {
    context = model_->TaskContext(task.graph, task.support, nullptr);
    cache_.Put(key, context);
  }

  // Same decode path as CommunitySearchEngine::Search, so multi-threaded
  // serving is prediction-identical to single-threaded Search.
  resp->members = MembersFromContext(*model_, task, context,
                                     request.threshold, &resp->probs);
  return Status::Ok();
}

SearchResponse QueryServer::ServeOne(const SearchRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  SearchResponse resp;
  resp.backend = backend_name_;
  resp.threshold = request.threshold;
  resp.status = AnswerRequest(request, &resp);
  if (!resp.status.ok()) {
    resp.members.clear();
    resp.probs.clear();
    resp.cache_hit = false;
  }
  const auto end = std::chrono::steady_clock::now();
  resp.latency_ms =
      std::chrono::duration<double, std::milli>(end - start).count();

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (latencies_ms_.size() < kMaxLatencySamples) {
      latencies_ms_.push_back(resp.latency_ms);
    } else {
      latencies_ms_[latency_next_] = resp.latency_ms;
      latency_next_ = (latency_next_ + 1) % kMaxLatencySamples;
    }
    ++stat_requests_;
    if (!resp.status.ok()) ++stat_errors_;
    if (resp.cache_hit) ++stat_cache_hits_;
    if (!window_open_) {
      window_start_ = start;
      window_open_ = true;
    }
    window_end_ = std::max(window_end_, end);
  }
  return resp;
}

SearchResponse QueryServer::Serve(const SearchRequest& request) {
  return ServeOne(request);
}

std::vector<SearchResponse> QueryServer::ServeBatch(
    const std::vector<SearchRequest>& batch) {
  std::vector<SearchResponse> responses(batch.size());
  if (batch.empty()) return responses;

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = batch.size();
  for (size_t i = 0; i < batch.size(); ++i) {
    pool_.Submit([this, &batch, &responses, &done_mu, &done_cv, &remaining,
                  i] {
      responses[i] = ServeOne(batch[i]);
      std::lock_guard<std::mutex> lock(done_mu);
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&remaining] { return remaining == 0; });
  return responses;
}

ServerStats QueryServer::Stats() const {
  ServerStats s;
  s.backend = backend_name_;
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.requests = stat_requests_;
    s.errors = stat_errors_;
    s.cache_hits = stat_cache_hits_;
    sorted = latencies_ms_;
    if (window_open_ && s.requests > 0) {
      const double secs = std::chrono::duration<double>(
                              window_end_ - window_start_)
                              .count();
      s.qps = secs > 0 ? static_cast<double>(s.requests) / secs : 0.0;
    }
  }
  s.cache_misses = s.requests - s.cache_hits;
  s.cache_hit_rate =
      s.requests > 0
          ? static_cast<double>(s.cache_hits) / static_cast<double>(s.requests)
          : 0.0;
  if (!sorted.empty()) {
    std::sort(sorted.begin(), sorted.end());
    double sum = 0;
    for (double v : sorted) sum += v;
    s.mean_ms = sum / static_cast<double>(sorted.size());
    s.p50_ms = PercentileOf(sorted, 0.50);
    s.p90_ms = PercentileOf(sorted, 0.90);
    s.p99_ms = PercentileOf(sorted, 0.99);
    s.max_ms = sorted.back();
  }
  return s;
}

void QueryServer::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  latencies_ms_.clear();
  latency_next_ = 0;
  stat_requests_ = 0;
  stat_errors_ = 0;
  stat_cache_hits_ = 0;
  window_open_ = false;
  window_start_ = window_end_ = std::chrono::steady_clock::time_point{};
}

}  // namespace serve
}  // namespace cgnp
