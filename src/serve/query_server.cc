#include "serve/query_server.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <optional>
#include <utility>

#include "common/check.h"
#include "graph/format.h"
#include "obs/log.h"
#include "tensor/ops.h"
#include "tensor/workspace.h"

namespace cgnp {
namespace serve {

namespace {

double PercentileOf(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

StatusOr<std::shared_ptr<const Graph>> OpenMappedGraph(
    const std::string& path) {
  CGNP_ASSIGN_OR_RETURN(Graph g, MapGraphBinary(path));
  CGNP_LOG(kInfo, "serve_graph_mapped")
      .Str("path", path)
      .Num("num_nodes", static_cast<double>(g.num_nodes()))
      .Num("num_edges", static_cast<double>(g.num_edges()));
  return std::make_shared<const Graph>(std::move(g));
}

QueryServer::QueryServer(const CgnpModel* model,
                         std::unique_ptr<CommunitySearcher> backend,
                         std::shared_ptr<const CommunitySearchEngine>
                             owned_engine,
                         ServeOptions options)
    : model_(model),
      backend_(std::move(backend)),
      owned_engine_(std::move(owned_engine)),
      backend_name_(options.backend),
      options_(std::move(options)),
      cache_(options_.cache_capacity),
      pool_(options_.num_threads),
      latency_reservoir_(static_cast<size_t>(
          std::max<int64_t>(1, options_.latency_reservoir))) {
  // Private-constructor invariant: Create() is the only caller and always
  // passes exactly one driver, so this cannot fire on user input.
  CGNP_CHECK((model_ != nullptr) !=  // NOLINT(cgnp-no-abort): internal invariant of the private ctor; every user path goes through the validating Create()
             (backend_ != nullptr))
      << " exactly one of model/backend must drive the server";
  // Resolve the per-backend registry metrics once; recording through the
  // cached pointers is sharded and lock-free.
  auto& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels = {{"backend", backend_name_}};
  metrics_.requests = &reg.GetCounter("cgnp_serve_requests_total", labels);
  metrics_.errors = &reg.GetCounter("cgnp_serve_errors_total", labels);
  metrics_.cache_hits = &reg.GetCounter("cgnp_serve_cache_hits_total", labels);
  metrics_.updates = &reg.GetCounter("cgnp_serve_updates_total", labels);
  metrics_.cache_invalidated =
      &reg.GetCounter("cgnp_serve_cache_invalidated_total", labels);
  metrics_.cache_retained =
      &reg.GetCounter("cgnp_serve_cache_retained_total", labels);
  metrics_.latency_ms = &reg.GetHistogram("cgnp_serve_latency_ms", labels);
  metrics_.queue_depth = &reg.GetGauge("cgnp_serve_queue_depth", labels);
  CGNP_LOG(kDebug, "serve_start")
      .Str("backend", backend_name_)
      .Num("num_threads", options_.num_threads)
      .Num("cache_capacity", static_cast<double>(options_.cache_capacity));
}

StatusOr<std::unique_ptr<QueryServer>> QueryServer::Create(
    const CommunitySearchEngine* engine, ServeOptions options) {
  if (options.num_threads <= 0) {
    return InvalidArgumentError("num_threads must be positive, got " +
                                std::to_string(options.num_threads));
  }
  if (options.cache_capacity < 0) {
    return InvalidArgumentError("cache_capacity must be >= 0, got " +
                                std::to_string(options.cache_capacity));
  }
  // Unknown names fall through to MakeSearcher below, which returns
  // NotFound listing the registered backends.
  if (options.backend == "cgnp") {
    std::shared_ptr<const CommunitySearchEngine> owned;
    if (engine == nullptr && !options.searcher.checkpoint.empty()) {
      CGNP_ASSIGN_OR_RETURN(
          CommunitySearchEngine restored,
          CommunitySearchEngine::LoadCheckpoint(options.searcher.checkpoint));
      owned = std::make_shared<const CommunitySearchEngine>(
          std::move(restored));
      engine = owned.get();
    }
    if (engine == nullptr) {
      return InvalidArgumentError(
          "the \"cgnp\" backend needs a trained engine (pass one to "
          "Create, or set ServeOptions::searcher.checkpoint)");
    }
    if (!engine->trained()) {
      return FailedPreconditionError(
          "the \"cgnp\" backend needs a trained engine: Fit it or restore "
          "a trained checkpoint first");
    }
    // Inherit the task materialisation parameters from the engine so
    // served responses are identical to engine.Search.
    options.tasks = engine->options().tasks;
    options.attribute_dim = engine->attribute_dim();
    options.seed = engine->options().seed;
    return std::unique_ptr<QueryServer>(
        new QueryServer(engine->model(), /*backend=*/nullptr,
                        std::move(owned), std::move(options)));
  }
  CGNP_ASSIGN_OR_RETURN(auto backend,
                        MakeSearcher(options.backend, options.searcher));
  return std::unique_ptr<QueryServer>(
      new QueryServer(/*model=*/nullptr, std::move(backend),
                      /*owned_engine=*/nullptr, std::move(options)));
}

Status QueryServer::AnswerRequest(const SearchRequest& request,
                                  SearchResponse* resp) {
  if (request.graph == nullptr) {
    return InvalidArgumentError("SearchRequest without a graph");
  }
  QueryOptions query_options;
  query_options.threshold = request.threshold;

  if (backend_ != nullptr) {
    // Registry backend: it performs the full input validation itself.
    CGNP_TRACE_SPAN("search");
    CGNP_ASSIGN_OR_RETURN(
        QueryResult result,
        backend_->Search(*request.graph, request.query, request.support,
                         query_options));
    resp->members = std::move(result.members);
    resp->probs = std::move(result.probs);
    return Status::Ok();
  }

  // cgnp pipeline with the context cache. NaN fails both comparisons.
  if (!(request.threshold >= 0.0f && request.threshold <= 1.0f)) {
    return InvalidArgumentError("threshold must be in [0, 1], got " +
                                std::to_string(request.threshold));
  }
  // Inference never records tape (thread-local switch; see tensor/tensor.h).
  NoGradGuard no_grad;
  CGNP_ASSIGN_OR_RETURN(
      LocalQueryTask task,
      BuildQueryTask(*request.graph, request.query, request.support,
                     options_.tasks, options_.attribute_dim, options_.seed));
  if (task.graph.feature_dim() != model_->feature_dim()) {
    return InvalidArgumentError(
        "request graph features incompatible with the served model: task "
        "feature_dim " + std::to_string(task.graph.feature_dim()) +
        " vs model " + std::to_string(model_->feature_dim()));
  }

  const ContextCache::Key key{request.graph_id, TaskFingerprint(task),
                              request.graph_version};
  resp->cache_eligible = true;  // the cgnp path consults the cache
  Tensor context;
  if (cache_.Get(key, &context)) {
    resp->cache_hit = true;
  } else {
    CGNP_TRACE_SPAN("encode");
    context = model_->TaskContext(task.graph, task.support, nullptr);
    // Record which parent nodes the context depends on (the task's
    // subgraph list) so graph updates can invalidate by overlap instead
    // of flushing the whole graph id.
    cache_.Put(key, context, task.nodes);
  }

  // Same decode path as CommunitySearchEngine::Search, so multi-threaded
  // serving is prediction-identical to single-threaded Search.
  resp->members = MembersFromContext(*model_, task, context,
                                     request.threshold, &resp->probs);
  return Status::Ok();
}

void QueryServer::RecordStages(const std::vector<obs::StageTiming>& stages) {
  // Caller holds stats_mu_. Only depth-0 spans aggregate (children are
  // already included in their parent's elapsed time).
  for (const auto& st : stages) {
    if (st.depth != 0) continue;
    StageAccum& acc = stage_accums_[st.name];
    if (acc.global == nullptr) {
      acc.global = &obs::MetricsRegistry::Default().GetHistogram(
          "cgnp_serve_stage_ms",
          {{"backend", backend_name_}, {"stage", st.name}});
    }
    ++acc.count;
    acc.total_ms += st.ms;
    if (acc.samples.size() < latency_reservoir_) {
      acc.samples.push_back(st.ms);
    } else {
      acc.samples[acc.next] = st.ms;
      acc.next = (acc.next + 1) % latency_reservoir_;
    }
    acc.global->Record(st.ms);
  }
}

SearchResponse QueryServer::ServeOne(const SearchRequest& request) {
  metrics_.queue_depth->Set(static_cast<double>(pool_.pending()));
  const auto start = std::chrono::steady_clock::now();
  SearchResponse resp;
  resp.backend = backend_name_;
  resp.threshold = request.threshold;
#if CGNP_OBS_ENABLED
  // Capture this request's stage tree: spans fired anywhere below
  // AnswerRequest (task_build/encode/decode in the engine, search in the
  // classical adapters) land in this collector.
  std::optional<obs::TraceCollector> collector;
  if (obs::Enabled()) collector.emplace();
#endif
  {
    // One arena cycle per request: every intermediate tensor allocated
    // under AnswerRequest lands in this thread's workspace and is
    // reclaimed wholesale here. Escaping state (response vectors, cached
    // contexts) is plain heap by construction -- see tensor/workspace.h.
    WorkspaceScope workspace;
    resp.status = AnswerRequest(request, &resp);
  }
  if (!resp.status.ok()) {
    resp.members.clear();
    resp.probs.clear();
    resp.cache_hit = false;
    CGNP_LOG_EVERY(kWarn, "serve_request_failed", /*per_second=*/1.0)
        .Str("backend", backend_name_)
        .Err(resp.status);
  }
#if CGNP_OBS_ENABLED
  if (collector) resp.stages = collector->Take();
#endif
  const auto end = std::chrono::steady_clock::now();
  resp.latency_ms =
      std::chrono::duration<double, std::milli>(end - start).count();

  metrics_.requests->Increment();
  if (!resp.status.ok()) metrics_.errors->Increment();
  if (resp.cache_hit) metrics_.cache_hits->Increment();
  metrics_.latency_ms->Record(resp.latency_ms);

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (latencies_ms_.size() < latency_reservoir_) {
      latencies_ms_.push_back(resp.latency_ms);
    } else {
      latencies_ms_[latency_next_] = resp.latency_ms;
      latency_next_ = (latency_next_ + 1) % latency_reservoir_;
    }
    ++stat_requests_;
    if (!resp.status.ok()) ++stat_errors_;
    if (resp.cache_hit) ++stat_cache_hits_;
    if (resp.cache_eligible) ++stat_cache_eligible_;
    // Running extremes, independent of the bounded reservoir above.
    if (stat_requests_ == 1) {
      stat_min_ms_ = stat_max_ms_ = resp.latency_ms;
    } else {
      stat_min_ms_ = std::min(stat_min_ms_, resp.latency_ms);
      stat_max_ms_ = std::max(stat_max_ms_, resp.latency_ms);
    }
    if (!resp.stages.empty()) RecordStages(resp.stages);
    if (!window_open_) {
      window_start_ = start;
      window_open_ = true;
    }
    window_end_ = std::max(window_end_, end);
  }
  return resp;
}

SearchResponse QueryServer::Serve(const SearchRequest& request) {
  return ServeOne(request);
}

ContextCache::InvalidationResult QueryServer::NotifyGraphUpdate(
    uint64_t graph_id, uint64_t new_version,
    const std::vector<NodeId>& dirty) {
  ContextCache::InvalidationResult result;
  {
    CGNP_TRACE_SPAN("invalidate");
    result = cache_.ScopedInvalidate(graph_id, new_version, dirty);
  }
  metrics_.updates->Increment();
  metrics_.cache_invalidated->Increment(
      static_cast<uint64_t>(result.evicted));
  metrics_.cache_retained->Increment(
      static_cast<uint64_t>(result.retained));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stat_updates_;
    stat_cache_invalidated_ += static_cast<uint64_t>(result.evicted);
    stat_cache_retained_ += static_cast<uint64_t>(result.retained);
  }
  CGNP_LOG(kDebug, "serve_graph_update")
      .Num("graph_id", static_cast<double>(graph_id))
      .Num("version", static_cast<double>(new_version))
      .Num("dirty_nodes", static_cast<double>(dirty.size()))
      .Num("evicted", static_cast<double>(result.evicted))
      .Num("retained", static_cast<double>(result.retained));
  return result;
}

std::vector<SearchResponse> QueryServer::ServeBatch(
    const std::vector<SearchRequest>& batch) {
  std::vector<SearchResponse> responses(batch.size());
  if (batch.empty()) return responses;

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = batch.size();
  for (size_t i = 0; i < batch.size(); ++i) {
    pool_.Submit([this, &batch, &responses, &done_mu, &done_cv, &remaining,
                  i] {
      responses[i] = ServeOne(batch[i]);
      std::lock_guard<std::mutex> lock(done_mu);
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&remaining] { return remaining == 0; });
  return responses;
}

ServerStats QueryServer::Stats() const {
  ServerStats s;
  s.backend = backend_name_;
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.requests = stat_requests_;
    s.errors = stat_errors_;
    s.cache_hits = stat_cache_hits_;
    s.cache_eligible = stat_cache_eligible_;
    s.updates = stat_updates_;
    s.cache_invalidated = stat_cache_invalidated_;
    s.cache_retained = stat_cache_retained_;
    s.min_ms = stat_min_ms_;
    s.max_ms = stat_max_ms_;
    // The cache counts displacements over its lifetime; window against
    // the snapshot taken at the last ResetStats.
    s.cache_evictions = cache_.evictions() - cache_evictions_at_reset_;
    sorted = latencies_ms_;
    for (const auto& [stage, acc] : stage_accums_) {
      if (acc.count == 0) continue;
      StageStats ss;
      ss.stage = stage;
      ss.count = acc.count;
      ss.total_ms = acc.total_ms;
      ss.mean_ms = acc.total_ms / static_cast<double>(acc.count);
      std::vector<double> samples = acc.samples;
      std::sort(samples.begin(), samples.end());
      ss.p50_ms = PercentileOf(samples, 0.50);
      s.stages.push_back(std::move(ss));
    }
    if (window_open_ && s.requests > 0) {
      const double secs = std::chrono::duration<double>(
                              window_end_ - window_start_)
                              .count();
      s.qps = secs > 0 ? static_cast<double>(s.requests) / secs : 0.0;
    }
  }
  // Honest cache accounting: classical backends never consult the cache,
  // so they contribute neither hits nor misses.
  s.cache_misses = s.cache_eligible - s.cache_hits;
  s.cache_hit_rate = s.cache_eligible > 0
                         ? static_cast<double>(s.cache_hits) /
                               static_cast<double>(s.cache_eligible)
                         : 0.0;
  if (!sorted.empty()) {
    std::sort(sorted.begin(), sorted.end());
    double sum = 0;
    for (double v : sorted) sum += v;
    s.mean_ms = sum / static_cast<double>(sorted.size());
    s.p50_ms = PercentileOf(sorted, 0.50);
    s.p90_ms = PercentileOf(sorted, 0.90);
    s.p99_ms = PercentileOf(sorted, 0.99);
  }
  return s;
}

void QueryServer::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  latencies_ms_.clear();
  latency_next_ = 0;
  stat_requests_ = 0;
  stat_errors_ = 0;
  stat_cache_hits_ = 0;
  stat_cache_eligible_ = 0;
  stat_updates_ = 0;
  stat_cache_invalidated_ = 0;
  stat_cache_retained_ = 0;
  stat_min_ms_ = stat_max_ms_ = 0.0;
  cache_evictions_at_reset_ = cache_.evictions();
  stage_accums_.clear();
  window_open_ = false;
  window_start_ = window_end_ = std::chrono::steady_clock::time_point{};
}

bench::Json ServerStatsToJson(const ServerStats& stats) {
  bench::Json doc = bench::Json::MakeObject();
  doc.Set("backend", bench::Json::MakeString(stats.backend));
  doc.Set("requests", bench::Json::MakeNumber(
                          static_cast<double>(stats.requests)));
  doc.Set("errors",
          bench::Json::MakeNumber(static_cast<double>(stats.errors)));
  doc.Set("cache_eligible", bench::Json::MakeNumber(
                                static_cast<double>(stats.cache_eligible)));
  doc.Set("cache_hits", bench::Json::MakeNumber(
                            static_cast<double>(stats.cache_hits)));
  doc.Set("cache_misses", bench::Json::MakeNumber(
                              static_cast<double>(stats.cache_misses)));
  doc.Set("cache_evictions", bench::Json::MakeNumber(
                                 static_cast<double>(stats.cache_evictions)));
  doc.Set("cache_hit_rate", bench::Json::MakeNumber(stats.cache_hit_rate));
  doc.Set("updates", bench::Json::MakeNumber(
                         static_cast<double>(stats.updates)));
  doc.Set("cache_invalidated",
          bench::Json::MakeNumber(
              static_cast<double>(stats.cache_invalidated)));
  doc.Set("cache_retained", bench::Json::MakeNumber(
                                static_cast<double>(stats.cache_retained)));
  doc.Set("qps", bench::Json::MakeNumber(stats.qps));
  doc.Set("mean_ms", bench::Json::MakeNumber(stats.mean_ms));
  doc.Set("p50_ms", bench::Json::MakeNumber(stats.p50_ms));
  doc.Set("p90_ms", bench::Json::MakeNumber(stats.p90_ms));
  doc.Set("p99_ms", bench::Json::MakeNumber(stats.p99_ms));
  doc.Set("min_ms", bench::Json::MakeNumber(stats.min_ms));
  doc.Set("max_ms", bench::Json::MakeNumber(stats.max_ms));
  bench::Json stages = bench::Json::MakeArray();
  for (const auto& st : stats.stages) {
    bench::Json row = bench::Json::MakeObject();
    row.Set("stage", bench::Json::MakeString(st.stage));
    row.Set("count",
            bench::Json::MakeNumber(static_cast<double>(st.count)));
    row.Set("p50_ms", bench::Json::MakeNumber(st.p50_ms));
    row.Set("mean_ms", bench::Json::MakeNumber(st.mean_ms));
    row.Set("total_ms", bench::Json::MakeNumber(st.total_ms));
    stages.Append(std::move(row));
  }
  doc.Set("stages", std::move(stages));
  return doc;
}

}  // namespace serve
}  // namespace cgnp
