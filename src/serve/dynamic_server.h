// Version-aware serving over a mutating graph: one facade coordinating a
// DynamicCommunityIndex (cs/dynamic.h) receiving edit traffic with a
// QueryServer answering query traffic.
//
// The serving discipline resolves the tension between the learned
// pipeline (which needs an immutable CSR Graph to sample tasks from) and
// a graph that keeps changing:
//   * Edits flow into the incremental index's delta overlay; its k-core /
//     k-truss numbers are repaired locally per edit, so the incremental
//     backends ("kcore_inc"/"ktruss_inc") always answer FRESH, at the
//     delta's current version.
//   * Learned ("cgnp") and classical batch backends answer from the last
//     compacted snapshot -- bounded staleness, measured exactly by the
//     delta depth at serve time and bounded by Options::compact_every.
//   * Compaction folds the delta into a new snapshot, rebases the index,
//     and announces the update to the QueryServer: the context cache is
//     scopedly invalidated -- entries whose task subgraph avoids the dirty
//     region are re-keyed to the new version (still numerically exact),
//     the rest are dropped. Requests are stamped with the serving
//     snapshot's version, so a stale context can never answer a
//     new-version request.
//
// Thread safety: ApplyUpdate / Compact / Serve / stats may be called
// concurrently from any threads. Edits serialise behind the index's
// writer lock; Serve pins the serving snapshot with a shared_ptr copy
// under a shared lock, so compaction never invalidates a request in
// flight. Everything here is abort-free (Status in, Status out).
#ifndef CGNP_SERVE_DYNAMIC_SERVER_H_
#define CGNP_SERVE_DYNAMIC_SERVER_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/status.h"
#include "cs/dynamic.h"
#include "serve/query_server.h"

namespace cgnp {
namespace serve {

class DynamicGraphServer {
 public:
  struct Options {
    // Forwarded to QueryServer::Create. `searcher.dynamic_index` is filled
    // in by Create with the server's own index when the backend is one of
    // the incremental names.
    ServeOptions serve;
    // Cache/metrics namespace for the served graph. For mapped snapshots
    // Graph::storage_fingerprint() is the natural value.
    uint64_t graph_id = 1;
    // Auto-compact after this many applied (version-advancing) edits;
    // <= 0 disables auto-compaction (Compact() still works). This is the
    // staleness bound for snapshot-serving backends: a served answer lags
    // the freshest version by at most compact_every - 1 edits.
    int64_t compact_every = 64;
  };

  struct DynamicStats {
    uint64_t version = 0;           // freshest (delta) version
    uint64_t snapshot_version = 0;  // version snapshot-backends serve at
    int64_t delta_depth = 0;        // current staleness, in edits
    uint64_t updates_applied = 0;
    uint64_t updates_rejected = 0;
    uint64_t compactions = 0;
  };

  // `base` must be non-null; `engine` is required exactly when
  // options.serve.backend == "cgnp" (same contract as QueryServer).
  static StatusOr<std::unique_ptr<DynamicGraphServer>> Create(
      const CommunitySearchEngine* engine, std::shared_ptr<const Graph> base,
      Options options);

  // Applies one edit at the freshest version (GraphDelta's mutation
  // contract: OutOfRange / InvalidArgument / NotFound errors, idempotent
  // insert = accepted no-op). May trigger auto-compaction.
  Status ApplyUpdate(const GraphEdit& edit);
  Status InsertEdge(NodeId u, NodeId v);
  Status DeleteEdge(NodeId u, NodeId v);

  // Answers `request` against the serving snapshot: graph, graph_id and
  // graph_version are stamped by the server (any values the caller set
  // are overwritten); query/support/threshold are the caller's. The
  // snapshot stays pinned until the response is built.
  SearchResponse Serve(SearchRequest request);

  // Folds pending edits into a new serving snapshot and scopedly
  // invalidates the context cache (see the header comment). No-op when
  // the delta is empty.
  ContextCache::InvalidationResult Compact();

  DynamicStats dynamic_stats() const;
  ServerStats server_stats() const { return server_->Stats(); }
  // The shared incremental index -- hand it to SearcherConfig::dynamic_index
  // to build "kcore_inc"/"ktruss_inc" searchers answering fresh.
  const std::shared_ptr<DynamicCommunityIndex>& index() const {
    return index_;
  }
  QueryServer& server() { return *server_; }
  std::shared_ptr<const Graph> snapshot() const;

 private:
  DynamicGraphServer(std::shared_ptr<DynamicCommunityIndex> index,
                     std::shared_ptr<const Graph> base,
                     std::unique_ptr<QueryServer> server, Options options);

  const Options options_;
  std::shared_ptr<DynamicCommunityIndex> index_;
  std::unique_ptr<QueryServer> server_;

  // Serving snapshot + version + edit bookkeeping; mu_ is shared for
  // Serve (pin the snapshot) and exclusive for compaction rollover.
  mutable std::shared_mutex mu_;
  std::shared_ptr<const Graph> snapshot_;
  uint64_t snapshot_version_ = 0;
  int64_t edits_since_compact_ = 0;
  uint64_t updates_applied_ = 0;
  uint64_t updates_rejected_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace serve
}  // namespace cgnp

#endif  // CGNP_SERVE_DYNAMIC_SERVER_H_
