#include "serve/context_cache.h"

#include <algorithm>

#include "obs/metrics.h"
#include "tensor/workspace.h"

namespace cgnp {
namespace serve {

namespace {

// Process-wide cache-effectiveness counters (all caches aggregated; the
// per-server window view lives in ServerStats). Pointers are fetched once
// and shared -- counters themselves are sharded and lock-free.
struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* invalidations;
};

const CacheMetrics& GlobalCacheMetrics() {
  static const CacheMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Default();
    return CacheMetrics{
        &reg.GetCounter("cgnp_context_cache_hits_total"),
        &reg.GetCounter("cgnp_context_cache_misses_total"),
        &reg.GetCounter("cgnp_context_cache_evictions_total"),
        &reg.GetCounter("cgnp_context_cache_invalidations_total"),
    };
  }();
  return m;
}

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001B3ull;

void HashI64(uint64_t* h, int64_t v) {
  auto u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    *h ^= (u >> (8 * i)) & 0xFFu;
    *h *= kFnvPrime;
  }
}

void HashIds(uint64_t* h, const std::vector<NodeId>& ids) {
  HashI64(h, static_cast<int64_t>(ids.size()));
  for (NodeId v : ids) HashI64(h, v);
}

// Both inputs sorted ascending.
bool SortedIntersect(const std::vector<NodeId>& a,
                     const std::vector<NodeId>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

uint64_t TaskFingerprint(const LocalQueryTask& task) {
  uint64_t h = kFnvOffset;
  HashIds(&h, task.nodes);
  HashI64(&h, task.query);
  HashI64(&h, static_cast<int64_t>(task.support.size()));
  for (const auto& ex : task.support) {
    HashI64(&h, ex.query);
    HashIds(&h, ex.pos);
    HashIds(&h, ex.neg);
  }
  return h;
}

ContextCache::ContextCache(int64_t capacity) : capacity_(capacity) {}

bool ContextCache::Get(const Key& key, Tensor* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    GlobalCacheMetrics().misses->Increment();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  GlobalCacheMetrics().hits->Increment();
  *out = it->second->context;
  return true;
}

void ContextCache::Put(const Key& key, Tensor context) {
  Put(key, std::move(context), {});
}

void ContextCache::Put(const Key& key, Tensor context,
                       std::vector<NodeId> nodes) {
  if (capacity_ <= 0) return;
  // A cached context outlives the query that produced it. When the caller
  // is inside a WorkspaceScope the tensor lives in the per-query arena, so
  // deep-copy it into ordinary heap storage first -- this is the one
  // sanctioned escape from the workspace lifetime rules (workspace.h).
  if (Workspace::Active() != nullptr) {
    WorkspacePause heap;
    context = context.Clone();
  }
  std::sort(nodes.begin(), nodes.end());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->context = std::move(context);
    it->second->nodes = std::move(nodes);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(context), std::move(nodes)});
  index_[key] = lru_.begin();
  if (static_cast<int64_t>(lru_.size()) > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    GlobalCacheMetrics().evictions->Increment();
  }
}

ContextCache::InvalidationResult ContextCache::ScopedInvalidate(
    uint64_t graph_id, uint64_t new_version,
    const std::vector<NodeId>& dirty) {
  InvalidationResult result;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.graph_id != graph_id || it->key.version == new_version) {
      ++it;
      continue;
    }
    Key rekeyed = it->key;
    rekeyed.version = new_version;
    // Unknown coverage is conservatively dirty; recorded coverage survives
    // iff it avoids every edited node. A fresher entry already cached under
    // the new version wins over a re-keyed survivor.
    const bool survives = !it->nodes.empty() &&
                          !SortedIntersect(it->nodes, dirty) &&
                          index_.count(rekeyed) == 0;
    index_.erase(it->key);
    if (survives) {
      it->key = rekeyed;
      index_[rekeyed] = it;
      ++result.retained;
      ++it;
    } else {
      it = lru_.erase(it);
      ++result.evicted;
      ++invalidations_;
      GlobalCacheMetrics().invalidations->Increment();
    }
  }
  return result;
}

void ContextCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

int64_t ContextCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(lru_.size());
}

uint64_t ContextCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ContextCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t ContextCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

uint64_t ContextCache::invalidations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return invalidations_;
}

}  // namespace serve
}  // namespace cgnp
