#include "serve/context_cache.h"

#include "obs/metrics.h"

namespace cgnp {
namespace serve {

namespace {

// Process-wide cache-effectiveness counters (all caches aggregated; the
// per-server window view lives in ServerStats). Pointers are fetched once
// and shared -- counters themselves are sharded and lock-free.
struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
};

const CacheMetrics& GlobalCacheMetrics() {
  static const CacheMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Default();
    return CacheMetrics{
        &reg.GetCounter("cgnp_context_cache_hits_total"),
        &reg.GetCounter("cgnp_context_cache_misses_total"),
        &reg.GetCounter("cgnp_context_cache_evictions_total"),
    };
  }();
  return m;
}

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001B3ull;

void HashI64(uint64_t* h, int64_t v) {
  auto u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    *h ^= (u >> (8 * i)) & 0xFFu;
    *h *= kFnvPrime;
  }
}

void HashIds(uint64_t* h, const std::vector<NodeId>& ids) {
  HashI64(h, static_cast<int64_t>(ids.size()));
  for (NodeId v : ids) HashI64(h, v);
}

}  // namespace

uint64_t TaskFingerprint(const LocalQueryTask& task) {
  uint64_t h = kFnvOffset;
  HashIds(&h, task.nodes);
  HashI64(&h, task.query);
  HashI64(&h, static_cast<int64_t>(task.support.size()));
  for (const auto& ex : task.support) {
    HashI64(&h, ex.query);
    HashIds(&h, ex.pos);
    HashIds(&h, ex.neg);
  }
  return h;
}

ContextCache::ContextCache(int64_t capacity) : capacity_(capacity) {}

bool ContextCache::Get(const Key& key, Tensor* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    GlobalCacheMetrics().misses->Increment();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  GlobalCacheMetrics().hits->Increment();
  *out = it->second->second;
  return true;
}

void ContextCache::Put(const Key& key, Tensor context) {
  if (capacity_ <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(context);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(context));
  index_[key] = lru_.begin();
  if (static_cast<int64_t>(lru_.size()) > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
    GlobalCacheMetrics().evictions->Increment();
  }
}

void ContextCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

int64_t ContextCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(lru_.size());
}

uint64_t ContextCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t ContextCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t ContextCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace serve
}  // namespace cgnp
