// obs_dump: exercise the serving stack on a small synthetic workload and
// print what the observability layer saw.
//
//   obs_dump                        # Prometheus text exposition
//   obs_dump --format=json          # registry snapshot as JSON
//   obs_dump --format=stats         # ServerStats window as JSON
//   obs_dump --backend=kcore --requests=200
//
// Exit code 0 on success, 1 on any setup/serve failure. The tool is the
// quickest way to eyeball metric names and label sets without wiring a
// scraper -- docs/OBSERVABILITY.md shows sample output.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/query_server.h"
#include "tensor/rng.h"

namespace {

using namespace cgnp;

struct Options {
  std::string format = "prometheus";  // prometheus | json | stats
  std::string backend = "cgnp";
  int64_t requests = 120;
};

bool ParseArgs(int argc, char** argv, Options* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* fmt = value("--format=")) {
      out->format = fmt;
    } else if (const char* backend = value("--backend=")) {
      out->backend = backend;
    } else if (const char* requests = value("--requests=")) {
      out->requests = std::atoll(requests);
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s\n"
                   "usage: obs_dump [--format=prometheus|json|stats] "
                   "[--backend=NAME] [--requests=N]\n",
                   arg.c_str());
      return false;
    }
  }
  if (out->format != "prometheus" && out->format != "json" &&
      out->format != "stats") {
    std::fprintf(stderr, "unknown --format=%s\n", out->format.c_str());
    return false;
  }
  if (out->requests <= 0) {
    std::fprintf(stderr, "--requests must be positive\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) return 1;

  // Small planted-community graph; enough structure for every backend.
  Rng rng(7);
  SyntheticConfig data_cfg;
  data_cfg.num_nodes = 400;
  data_cfg.num_communities = 5;
  data_cfg.intra_degree = 10;
  data_cfg.inter_degree = 1.5;
  data_cfg.attribute_dim = 8;
  data_cfg.attrs_per_node = 2;
  data_cfg.attrs_per_community_pool = 4;
  data_cfg.attr_affinity = 0.9;
  const Graph g = GenerateSyntheticGraph(data_cfg, &rng);

  serve::ServeOptions sopt;
  sopt.backend = opt.backend;
  sopt.num_threads = 2;
  sopt.cache_capacity = 64;

  CommunitySearchEngine engine({});
  const CommunitySearchEngine* engine_ptr = nullptr;
  if (opt.backend == "cgnp") {
    CommunitySearchEngine::Options eopt;
    eopt.model.hidden_dim = 16;
    eopt.model.epochs = 3;
    eopt.tasks.subgraph_size = 80;
    eopt.num_train_tasks = 6;
    eopt.num_valid_tasks = 0;
    engine = CommunitySearchEngine(eopt);
    const Status fitted = engine.Fit(g);
    if (!fitted.ok()) {
      std::fprintf(stderr, "engine fit failed: %s\n",
                   fitted.ToString().c_str());
      return 1;
    }
    engine_ptr = &engine;
  }

  auto server_or = serve::QueryServer::Create(engine_ptr, sopt);
  if (!server_or.ok()) {
    std::fprintf(stderr, "server construction failed: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  auto& server = *server_or.value();

  // Workload: a handful of distinct queries, each repeated, so the cache
  // sees both misses and hits.
  std::vector<serve::SearchRequest> batch;
  batch.reserve(opt.requests);
  for (int64_t i = 0; i < opt.requests; ++i) {
    serve::SearchRequest req;
    req.graph = &g;
    req.graph_id = 1;
    req.query = (i % 12) * 31 % g.num_nodes();
    batch.push_back(req);
  }
  uint64_t errors = 0;
  for (const auto& resp : server.ServeBatch(batch)) {
    if (!resp.status.ok()) ++errors;
  }
  if (errors > 0) {
    std::fprintf(stderr, "%llu of %lld requests failed\n",
                 static_cast<unsigned long long>(errors),
                 static_cast<long long>(opt.requests));
    return 1;
  }

  if (opt.format == "stats") {
    std::printf("%s\n", serve::ServerStatsToJson(server.Stats())
                            .Dump(/*indent=*/1).c_str());
    return 0;
  }
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Default().Snapshot();
  if (opt.format == "json") {
    std::printf("%s\n", obs::MetricsToJson(snapshot).Dump(/*indent=*/1).c_str());
  } else {
    std::printf("%s", obs::ToPrometheusText(snapshot).c_str());
  }
  return 0;
}
