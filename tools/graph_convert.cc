// graph_convert: command-line front end for the binary graph container
// (docs/GRAPH_FORMAT.md).
//
//   graph_convert convert <in> <out.cgrf> [--communities=F] [--attributes=F]
//       Ingest a text edge list (SNAP style; '#' comments) -- or re-encode
//       an existing container -- into a .cgrf file. Side files attach
//       ground-truth communities / discrete attributes to text input.
//   graph_convert synth <out.cgrf> --nodes=N [--communities=K] [--intra=D]
//       [--inter=D] [--attr-dim=D] [--seed=S] [--edges-text=F]
//       Generate a planted-partition graph and save it as a container;
//       --edges-text additionally writes the text edge list (handy for
//       exercising the convert path end to end).
//   graph_convert info <file.cgrf>
//       Print the header and section table (validates the whole file,
//       checksums included).
//   graph_convert verify <file.cgrf>
//       Run the full validation pipeline through BOTH load paths (copying
//       and mmap). Prints nothing but the verdict.
//   graph_convert serve <file.cgrf> [--queries=N] [--backend=NAME]
//       [--threads=T]
//       Map the container and answer N queries through the query server --
//       the "serve straight from the file" smoke test.
//   graph_convert apply-edits <in.cgrf> <edits.txt> <out.cgrf>
//       Replay a text edit list ("+u v" inserts, "-u v" deletes, '#'
//       comments) against the container through the delta overlay, then
//       compact and save the result. Any malformed line or rejected edit
//       (bad id, self loop, deleting an absent edge) fails the whole run
//       with a message naming the offending line/edit; nothing is written.
//
// Exit codes: 0 success, 1 Status failure (missing/corrupt file, failed
// query, bad edit), 2 usage error. Never aborts on bad input files.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "data/io.h"
#include "data/synthetic.h"
#include "graph/delta.h"
#include "graph/format.h"
#include "serve/query_server.h"
#include "tensor/rng.h"

namespace {

using namespace cgnp;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  graph_convert convert <in> <out.cgrf> [--communities=F] "
      "[--attributes=F]\n"
      "  graph_convert synth <out.cgrf> --nodes=N [--communities=K] "
      "[--intra=D] [--inter=D] [--attr-dim=D] [--seed=S] [--edges-text=F]\n"
      "  graph_convert info <file.cgrf>\n"
      "  graph_convert verify <file.cgrf>\n"
      "  graph_convert serve <file.cgrf> [--queries=N] [--backend=NAME] "
      "[--threads=T]\n"
      "  graph_convert apply-edits <in.cgrf> <edits.txt> <out.cgrf>\n");
  return 2;
}

int Fail(const Status& s) {
  std::fprintf(stderr, "graph_convert: %s\n", s.ToString().c_str());
  return 1;
}

// "--key=value" matcher shared by every subcommand.
const char* FlagValue(const std::string& arg, const char* prefix) {
  const size_t n = std::strlen(prefix);
  return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
}

int RunConvert(const std::vector<std::string>& args) {
  std::string in, out, communities, attributes;
  for (const auto& arg : args) {
    if (const char* com = FlagValue(arg, "--communities=")) {
      communities = com;
    } else if (const char* attr = FlagValue(arg, "--attributes=")) {
      attributes = attr;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else if (in.empty()) {
      in = arg;
    } else if (out.empty()) {
      out = arg;
    } else {
      return Usage();
    }
  }
  if (in.empty() || out.empty()) return Usage();
  auto graph = LoadGraphAuto(in, {}, communities, attributes);
  if (!graph.ok()) return Fail(graph.status());
  if (const Status s = SaveGraphBinary(*graph, out); !s.ok()) return Fail(s);
  std::printf("converted %s -> %s: %lld nodes, %lld edges\n", in.c_str(),
              out.c_str(), static_cast<long long>(graph->num_nodes()),
              static_cast<long long>(graph->num_edges()));
  return 0;
}

int RunSynth(const std::vector<std::string>& args) {
  std::string out, edges_text;
  SyntheticConfig cfg;
  cfg.num_nodes = 0;  // --nodes is mandatory
  cfg.num_communities = 10;
  cfg.attribute_dim = 0;
  uint64_t seed = 7;
  for (const auto& arg : args) {
    if (const char* nodes = FlagValue(arg, "--nodes=")) {
      cfg.num_nodes = std::atoll(nodes);
    } else if (const char* coms = FlagValue(arg, "--communities=")) {
      cfg.num_communities = std::atoll(coms);
    } else if (const char* intra = FlagValue(arg, "--intra=")) {
      cfg.intra_degree = std::atof(intra);
    } else if (const char* inter = FlagValue(arg, "--inter=")) {
      cfg.inter_degree = std::atof(inter);
    } else if (const char* attr_dim = FlagValue(arg, "--attr-dim=")) {
      cfg.attribute_dim = std::atoll(attr_dim);
    } else if (const char* seed_arg = FlagValue(arg, "--seed=")) {
      seed = std::strtoull(seed_arg, nullptr, 10);
    } else if (const char* edges = FlagValue(arg, "--edges-text=")) {
      edges_text = edges;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else if (out.empty()) {
      out = arg;
    } else {
      return Usage();
    }
  }
  if (out.empty() || cfg.num_nodes <= 0 || cfg.num_communities <= 0) {
    return Usage();
  }
  Rng rng(seed);
  const Graph g = GenerateSyntheticGraph(cfg, &rng);
  if (const Status s = SaveGraphBinary(g, out); !s.ok()) return Fail(s);
  if (!edges_text.empty()) {
    if (const Status s = SaveGraphToFiles(g, edges_text); !s.ok()) {
      return Fail(s);
    }
  }
  std::printf("synthesised %s: %lld nodes, %lld edges, %lld communities\n",
              out.c_str(), static_cast<long long>(g.num_nodes()),
              static_cast<long long>(g.num_edges()),
              static_cast<long long>(g.num_communities()));
  return 0;
}

int RunInfo(const std::string& path) {
  const auto info = ReadGraphFileInfo(path);
  if (!info.ok()) return Fail(info.status());
  std::printf("%s: CGRF v%u, %llu bytes, fingerprint %016llx\n",
              path.c_str(), kGraphFileVersion,
              static_cast<unsigned long long>(info->file_bytes),
              static_cast<unsigned long long>(info->fingerprint));
  std::printf(
      "  nodes=%llu directed_edges=%llu feature_dim=%llu attr_ids=%llu "
      "attributes=%s communities=%s\n",
      static_cast<unsigned long long>(info->num_nodes),
      static_cast<unsigned long long>(info->num_directed_edges),
      static_cast<unsigned long long>(info->feature_dim),
      static_cast<unsigned long long>(info->num_attr_ids),
      info->has_attributes ? "yes" : "no",
      info->has_communities ? "yes" : "no");
  for (const auto& s : info->sections) {
    std::printf("  section %u: offset=%llu bytes=%llu checksum=%016llx\n",
                s.id, static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.bytes),
                static_cast<unsigned long long>(s.checksum));
  }
  return 0;
}

int RunVerify(const std::string& path) {
  // Both load paths share one validation pipeline, but run both anyway:
  // verify is the tool the corruption tests and CI lean on.
  if (const auto g = LoadGraphBinary(path); !g.ok()) return Fail(g.status());
  const auto mapped = MapGraphBinary(path);
  if (!mapped.ok()) return Fail(mapped.status());
  std::printf("%s: OK (%lld nodes, %lld edges, fingerprint %016llx)\n",
              path.c_str(), static_cast<long long>(mapped->num_nodes()),
              static_cast<long long>(mapped->num_edges()),
              static_cast<unsigned long long>(
                  mapped->storage_fingerprint()));
  return 0;
}

int RunServe(const std::string& path, const std::vector<std::string>& args) {
  int64_t queries = 100;
  serve::ServeOptions opt;
  opt.backend = "kcore";
  for (const auto& arg : args) {
    if (const char* q = FlagValue(arg, "--queries=")) {
      queries = std::atoll(q);
    } else if (const char* backend = FlagValue(arg, "--backend=")) {
      opt.backend = backend;
    } else if (const char* threads = FlagValue(arg, "--threads=")) {
      opt.num_threads = static_cast<int>(std::atoll(threads));
    } else {
      return Usage();
    }
  }
  if (queries <= 0 || opt.num_threads <= 0) return Usage();

  const auto graph = serve::OpenMappedGraph(path);
  if (!graph.ok()) return Fail(graph.status());
  if ((*graph)->num_nodes() == 0) {
    return Fail(InvalidArgumentError("cannot serve an empty graph"));
  }
  auto server = serve::QueryServer::Create(nullptr, opt);
  if (!server.ok()) return Fail(server.status());

  std::vector<serve::SearchRequest> batch(static_cast<size_t>(queries));
  Rng rng(13);
  for (auto& req : batch) {
    req.graph = graph->get();
    req.graph_id = (*graph)->storage_fingerprint();
    req.query = rng.NextInt((*graph)->num_nodes());
  }
  const auto responses = (*server)->ServeBatch(batch);
  for (const auto& resp : responses) {
    if (!resp.status.ok()) return Fail(resp.status);
  }
  const serve::ServerStats stats = (*server)->Stats();
  std::printf(
      "served %llu queries from %s (backend=%s, threads=%d): "
      "p50=%.3fms p99=%.3fms qps=%.1f\n",
      static_cast<unsigned long long>(stats.requests), path.c_str(),
      opt.backend.c_str(), opt.num_threads, stats.p50_ms, stats.p99_ms,
      stats.qps);
  return 0;
}

int RunApplyEdits(const std::string& in, const std::string& edits_path,
                  const std::string& out) {
  auto graph = LoadGraphBinary(in);
  if (!graph.ok()) return Fail(graph.status());

  std::ifstream edits_file(edits_path, std::ios::binary);
  if (!edits_file) {
    return Fail(NotFoundError("cannot open edit list: " + edits_path));
  }
  std::ostringstream text;
  text << edits_file.rdbuf();
  const auto edits = ParseEditList(text.str());
  if (!edits.ok()) return Fail(edits.status());

  GraphDelta delta(std::make_shared<const Graph>(*std::move(graph)));
  if (const Status s = ApplyEditList(&delta, *edits); !s.ok()) return Fail(s);
  const Graph result = delta.Compact();
  if (const Status s = SaveGraphBinary(result, out); !s.ok()) return Fail(s);
  std::printf(
      "applied %zu edits (%llu applied versions) %s -> %s: %lld nodes, "
      "%lld edges\n",
      edits->size(), static_cast<unsigned long long>(delta.version()),
      in.c_str(), out.c_str(), static_cast<long long>(result.num_nodes()),
      static_cast<long long>(result.num_edges()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "convert") return RunConvert(args);
  if (cmd == "synth") return RunSynth(args);
  if (cmd == "info" && args.size() == 1) return RunInfo(args[0]);
  if (cmd == "verify" && args.size() == 1) return RunVerify(args[0]);
  if (cmd == "serve" && !args.empty()) {
    return RunServe(args[0], {args.begin() + 1, args.end()});
  }
  if (cmd == "apply-edits" && args.size() == 3) {
    return RunApplyEdits(args[0], args[1], args[2]);
  }
  return Usage();
}
