// cgnp_lint: walks src/ tools/ examples/ and enforces the project
// invariants the compiler cannot (docs/STATIC_ANALYSIS.md has the rule
// catalogue). The engine lives in src/lint/ (tested by tests/lint_test.cc);
// this file is argument parsing and presentation only.
//
// Usage:
//   cgnp_lint [--root=DIR] [--verbose]
//
//   --root=DIR   repo root to scan (default: current directory, falling
//                back to the parent when invoked from build/)
//   --verbose    also print resolved symbol counts and used suppressions
//
// Exit codes (CI contract, mirrored by tools/run_bench_tier.sh):
//   0  tree is clean
//   1  findings (printed as file:line: [rule] message)
//   2  usage or IO error
#include <filesystem>
#include <iostream>
#include <string>

#include "lint/lint.h"

namespace {

bool HasSrcDir(const std::string& root) {
  std::error_code ec;
  return std::filesystem::is_directory(
      std::filesystem::path(root) / "src", ec);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool root_given = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
      root_given = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: cgnp_lint [--root=DIR] [--verbose]\n";
      return 0;
    } else {
      std::cerr << "cgnp_lint: unknown argument: " << arg << "\n"
                << "usage: cgnp_lint [--root=DIR] [--verbose]\n";
      return 2;
    }
  }
  // Convenience: `build/cgnp_lint` from the repo root and `./cgnp_lint`
  // from inside build/ both find the tree.
  if (!root_given && !HasSrcDir(root) && HasSrcDir("..")) root = "..";

  auto report = cgnp::lint::LintTree(root);
  if (!report.ok()) {
    std::cerr << "cgnp_lint: " << report.status().ToString() << "\n";
    return 2;
  }
  std::cout << cgnp::lint::FormatReport(*report, verbose);
  return report->clean() ? 0 : 1;
}
