// bench_compare: diff two benchmark reports (or directories of
// BENCH_*.json) and gate on regressions.
//
//   bench_compare [flags] <baseline file|dir> <current file|dir>
//
// Flags:
//   --threshold=F            relative noise threshold for timing metrics
//                            (default 0.15 = 15%)
//   --accuracy-tol=F         absolute tolerance for exact metrics (f1,
//                            counts; default 0.02)
//   --timing-floor=F         skip "*_ms" metrics where both sides are
//                            below F milliseconds (default 5: jitter, not
//                            signal)
//   --case-threshold=SUB=F   per-case timing threshold override; SUB is a
//                            substring of the case key, first match wins
//                            (repeatable)
//   --advisory-timing        timing regressions print GitHub ::warning::
//                            annotations instead of failing (accuracy
//                            drift, schema errors, and missing cases still
//                            fail) -- the shared-runner CI mode
//   --update-baseline        copy the current reports over the baseline
//                            (file onto file, or every BENCH_*.json into
//                            the baseline directory) and exit 0
//
// Exit codes: 0 clean, 1 regression / drift / missing case,
//             2 usage, IO, or schema error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/compare.h"
#include "bench/report.h"

namespace fs = std::filesystem;
using cgnp::bench::BenchReport;
using cgnp::bench::CaseComparison;
using cgnp::bench::CompareOptions;
using cgnp::bench::CompareReports;
using cgnp::bench::CompareResult;
using cgnp::bench::ExitCodeFor;
using cgnp::bench::LoadReportFile;
using cgnp::bench::MetricClass;
using cgnp::bench::MetricDelta;
using cgnp::bench::Verdict;
using cgnp::bench::VerdictName;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--threshold=F] [--accuracy-tol=F] [--timing-floor=F] "
      "[--case-threshold=SUBSTR=F]... [--advisory-timing] "
      "[--update-baseline] <baseline file|dir> <current file|dir>\n",
      argv0);
  return 2;
}

// Collects the report files behind a path: the file itself, or every
// BENCH_*.json directly inside a directory.
std::vector<std::string> ReportPaths(const std::string& path) {
  std::vector<std::string> out;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (const auto& entry : fs::directory_iterator(path, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 &&
          name.size() > 5 && name.substr(name.size() - 5) == ".json") {
        out.push_back(entry.path().string());
      }
    }
    std::sort(out.begin(), out.end());
  } else if (fs::exists(path, ec)) {
    out.push_back(path);
  }
  return out;
}

bool LoadSide(const std::string& label, const std::string& path,
              std::vector<BenchReport>* reports) {
  const std::vector<std::string> files = ReportPaths(path);
  if (files.empty()) {
    std::fprintf(stderr, "error: no report files found at %s (%s side)\n",
                 path.c_str(), label.c_str());
    return false;
  }
  for (const std::string& file : files) {
    auto report = LoadReportFile(file);
    if (!report.ok()) {
      std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
      return false;
    }
    reports->push_back(std::move(report).value());
  }
  return true;
}

int UpdateBaseline(const std::string& baseline, const std::string& current) {
  const std::vector<std::string> files = ReportPaths(current);
  if (files.empty()) {
    std::fprintf(stderr, "error: no report files found at %s\n",
                 current.c_str());
    return 2;
  }
  std::error_code ec;
  if (!fs::is_directory(baseline, ec)) {
    if (files.size() != 1) {
      std::fprintf(stderr,
                   "error: baseline %s is a file but current side has %zu "
                   "reports\n",
                   baseline.c_str(), files.size());
      return 2;
    }
    fs::copy_file(files[0], baseline, fs::copy_options::overwrite_existing,
                  ec);
    if (ec) {
      std::fprintf(stderr, "error: copying %s -> %s: %s\n", files[0].c_str(),
                   baseline.c_str(), ec.message().c_str());
      return 2;
    }
    std::printf("updated baseline %s\n", baseline.c_str());
    return 0;
  }
  for (const std::string& file : files) {
    const fs::path dest = fs::path(baseline) / fs::path(file).filename();
    fs::copy_file(file, dest, fs::copy_options::overwrite_existing, ec);
    if (ec) {
      std::fprintf(stderr, "error: copying %s -> %s: %s\n", file.c_str(),
                   dest.string().c_str(), ec.message().c_str());
      return 2;
    }
    std::printf("updated %s\n", dest.string().c_str());
  }
  return 0;
}

void PrintDelta(const CaseComparison& cc, const MetricDelta& d,
                bool advisory_mode) {
  const bool timing = d.metric_class != MetricClass::kExact;
  const char* unit = timing ? "%" : "";
  const double shown = timing ? d.change * 100 : d.change;
  std::printf("  %-60s %-22s %12.4g %12.4g %+9.2f%s  %s\n", cc.key.c_str(),
              d.metric.c_str(), d.baseline, d.current, shown, unit,
              VerdictName(d.verdict));
  if (advisory_mode && d.verdict == Verdict::kAdvisory) {
    std::printf("::warning::bench %s %s slowed %.1f%% past the %.0f%% "
                "threshold (baseline %.4g, current %.4g)\n",
                cc.key.c_str(), d.metric.c_str(), d.change * 100,
                cc.threshold * 100, d.baseline, d.current);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CompareOptions options;
  bool update_baseline = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      options.timing_threshold = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg.rfind("--accuracy-tol=", 0) == 0) {
      options.accuracy_tolerance = std::strtod(arg.c_str() + 15, nullptr);
    } else if (arg.rfind("--timing-floor=", 0) == 0) {
      options.timing_floor_ms = std::strtod(arg.c_str() + 15, nullptr);
    } else if (arg.rfind("--case-threshold=", 0) == 0) {
      const std::string spec = arg.substr(17);
      const size_t eq = spec.rfind('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "error: malformed --case-threshold=%s\n",
                     spec.c_str());
        return Usage(argv[0]);
      }
      options.case_thresholds.emplace_back(
          spec.substr(0, eq), std::strtod(spec.c_str() + eq + 1, nullptr));
    } else if (arg == "--advisory-timing") {
      options.advisory_timing = true;
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag %s\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return Usage(argv[0]);
  const std::string& baseline_path = positional[0];
  const std::string& current_path = positional[1];

  if (update_baseline) return UpdateBaseline(baseline_path, current_path);

  std::vector<BenchReport> baseline, current;
  if (!LoadSide("baseline", baseline_path, &baseline)) return 2;
  if (!LoadSide("current", current_path, &current)) return 2;

  const CompareResult result = CompareReports(baseline, current, options);

  for (const std::string& note : result.host_notes) {
    std::printf("note: %s\n", note.c_str());
  }
  std::printf("%-62s %-22s %12s %12s %10s  %s\n", "case", "metric",
              "baseline", "current", "delta", "verdict");
  int shown = 0;
  for (const CaseComparison& cc : result.cases) {
    for (const MetricDelta& d : cc.deltas) {
      // The full matrix is large; print every non-ok verdict plus a
      // compact count of clean metrics.
      if (d.verdict == Verdict::kOk) {
        ++shown;
        continue;
      }
      PrintDelta(cc, d, options.advisory_timing);
    }
  }
  std::printf("(%d metrics within tolerance not shown)\n", shown);

  for (const std::string& key : result.missing_cases) {
    std::printf("::error::bench case missing from current run: %s\n",
                key.c_str());
  }
  for (const std::string& key : result.extra_cases) {
    std::printf("note: new case (not in baseline, run --update-baseline to "
                "adopt): %s\n",
                key.c_str());
  }
  std::printf(
      "\nsummary: %zu cases compared, %d regressions, %d drifts, "
      "%d advisories, %d improvements, %zu missing, %zu new\n",
      result.cases.size(), result.regressions, result.drifts,
      result.advisories, result.improvements, result.missing_cases.size(),
      result.extra_cases.size());
  const int exit_code = ExitCodeFor(result);
  std::printf("verdict: %s\n", exit_code == 0 ? "OK" : "FAIL");
  return exit_code;
}
